#include "harvest/condor/pool_simulation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "harvest/core/optimizer.hpp"
#include "harvest/dist/conditional.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/obs/timer.hpp"
#include "harvest/predict/proactive_policy.hpp"

namespace harvest::condor {

std::size_t PoolSimResult::finished_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.finished) ++n;
  }
  return n;
}

double PoolSimResult::mean_completion_s() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.finished) {
      sum += j.completion_s;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double PoolSimResult::total_moved_mb() const {
  double mb = 0.0;
  for (const auto& j : jobs) mb += j.moved_mb;
  return mb;
}

std::size_t PoolSimResult::total_evictions() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.evictions;
  return n;
}

double PoolSimResult::total_useful_work_s() const {
  double s = 0.0;
  for (const auto& j : jobs) s += j.useful_work_s;
  return s;
}

double PoolSimResult::total_lost_work_s() const {
  double s = 0.0;
  for (const auto& j : jobs) s += j.lost_work_s;
  return s;
}

std::size_t PoolSimResult::total_proactive_checkpoints() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.proactive_checkpoints;
  return n;
}

std::string timeline_csv(const std::vector<PoolTimelineFrame>& timeline) {
  std::string out =
      "frame,start_s,end_s,interval_mb,jobs_finished,shard,queue_depth,"
      "active,pending_mb,moved_mb,wait_p50_s,wait_p99_s,utilization,"
      "storms_deferred\n";
  char buf[256];
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const auto& f = timeline[i];
    const auto prefix = [&](char* p, std::size_t n) {
      return static_cast<std::size_t>(std::snprintf(
          p, n, "%zu,%.6g,%.6g,%.6g,%zu,", i, f.start_s, f.t_s,
          f.interval_mb, f.jobs_finished));
    };
    if (f.shards.empty()) {
      // Uncontended runs carry no shard telemetry: one row per frame with
      // the shard columns left empty.
      prefix(buf, sizeof(buf));
      out += buf;
      out += ",,,,,,,\n";
      continue;
    }
    for (std::size_t k = 0; k < f.shards.size(); ++k) {
      const auto& s = f.shards[k];
      const std::size_t off = prefix(buf, sizeof(buf));
      std::snprintf(buf + off, sizeof(buf) - off,
                    "%zu,%zu,%zu,%.6g,%.6g,%.6g,%.6g,%.6g,%llu\n", k,
                    s.queue_depth, s.active, s.pending_mb, s.moved_mb,
                    s.wait_p50_s, s.wait_p99_s, s.utilization,
                    static_cast<unsigned long long>(s.storms_deferred));
      out += buf;
    }
  }
  return out;
}

void write_timeline_csv(const std::string& path,
                        const std::vector<PoolTimelineFrame>& timeline) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_timeline_csv: cannot open " + path);
  }
  out << timeline_csv(timeline);
  if (!out) {
    throw std::runtime_error("write_timeline_csv: write failed: " + path);
  }
}

namespace {

struct PoolMetrics {
  obs::Counter& runs;
  obs::Counter& placements;
  obs::Counter& evictions;
  obs::Counter& finished;
  obs::Gauge& mb_moved;
  obs::Histogram& wall_s;
};

PoolMetrics& pool_metrics() {
  auto& reg = obs::default_registry();
  static PoolMetrics m{
      reg.counter("condor.pool_sim.runs"),
      reg.counter("condor.pool_sim.placements"),
      reg.counter("condor.pool_sim.evictions"),
      reg.counter("condor.pool_sim.jobs_finished"),
      reg.gauge("condor.pool_sim.mb_moved"),
      reg.histogram("condor.pool_sim.wall_s"),
  };
  return m;
}

/// Nearest-rank quantile over an unsorted sample buffer (sorts in place).
double sample_quantile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Live per-interval telemetry for the contended engine: the engine feeds
/// every completed/interrupted transfer's bytes (and waits) into the open
/// interval and calls advance() with its monotone processing time, which
/// cuts frames at cadence boundaries. Every megabyte lands in exactly one
/// frame, so the finished timeline partitions the run's network total.
class FleetTimeline {
 public:
  FleetTimeline(double every_s, std::size_t shards, double capacity_mbps)
      : every_s_(every_s),
        capacity_mbps_(capacity_mbps),
        moved_mb_(shards, 0.0),
        waits_(shards),
        storms_base_(shards, 0) {}

  /// Cut frames for every cadence boundary at or before `t` (the engine's
  /// monotone event-processing time).
  void advance(double t, const server::ServerFleet& fleet) {
    while (next_boundary() <= t) cut(next_boundary(), fleet);
  }

  void add_transfer(std::size_t shard, double mb) {
    moved_mb_[shard] += mb;
  }
  void add_wait(std::size_t shard, double wait_s) {
    waits_[shard].push_back(wait_s);
  }
  void job_finished() { ++jobs_finished_; }

  /// Flush the open interval as a final (possibly short) frame and return
  /// the timeline.
  std::vector<PoolTimelineFrame> finish(double end_t,
                                        const server::ServerFleet& fleet) {
    if (end_t > start_s_ || pending_mb_total() > 0.0 ||
        jobs_finished_ > 0) {
      cut(std::max(end_t, start_s_), fleet);
    }
    return std::move(frames_);
  }

 private:
  [[nodiscard]] double next_boundary() const {
    return start_s_ + every_s_;
  }
  [[nodiscard]] double pending_mb_total() const {
    double mb = 0.0;
    for (const double m : moved_mb_) mb += m;
    return mb;
  }

  void cut(double boundary, const server::ServerFleet& fleet) {
    PoolTimelineFrame frame;
    frame.start_s = start_s_;
    frame.t_s = boundary;
    frame.jobs_finished = jobs_finished_;
    const double dt = boundary - start_s_;
    frame.shards.reserve(moved_mb_.size());
    for (std::size_t k = 0; k < moved_mb_.size(); ++k) {
      const auto& shard = fleet.shard(k);
      PoolShardFrame sf;
      sf.queue_depth = shard.queued_count();
      sf.active = shard.active_count();
      sf.pending_mb = shard.pending_mb();
      sf.moved_mb = moved_mb_[k];
      sf.wait_p50_s = sample_quantile(waits_[k], 0.50);
      sf.wait_p99_s = sample_quantile(waits_[k], 0.99);
      sf.utilization =
          dt > 0.0
              ? std::min(1.0, moved_mb_[k] / (capacity_mbps_ * dt))
              : 0.0;
      const std::uint64_t storms = shard.staggered_count();
      sf.storms_deferred = storms - storms_base_[k];
      storms_base_[k] = storms;
      frame.interval_mb += sf.moved_mb;
      frame.shards.push_back(std::move(sf));
      moved_mb_[k] = 0.0;
      waits_[k].clear();
    }
    fleet.sample_gauges();
    frames_.push_back(std::move(frame));
    start_s_ = boundary;
    jobs_finished_ = 0;
  }

  double every_s_;
  double capacity_mbps_;
  double start_s_ = 0.0;  ///< open interval start (= last cut boundary)
  std::size_t jobs_finished_ = 0;
  std::vector<double> moved_mb_;            ///< per shard, open interval
  std::vector<std::vector<double>> waits_;  ///< per shard, open interval
  std::vector<std::uint64_t> storms_base_;  ///< staggered_count at last cut
  std::vector<PoolTimelineFrame> frames_;
};

/// Uncontended mode records (time, megabytes) per placement and job-finish
/// instants during the run, then buckets them into cadence frames after the
/// fact (the synchronous placement walk does not process events in global
/// time order, so live cutting would misattribute).
struct UncontendedTimelineLog {
  std::vector<std::pair<double, double>> placement_mb;  ///< (end time, MB)
  std::vector<double> job_finish_s;
};

std::vector<PoolTimelineFrame> build_uncontended_timeline(
    const UncontendedTimelineLog& log, double every_s) {
  double max_t = 0.0;
  for (const auto& [t, mb] : log.placement_mb) max_t = std::max(max_t, t);
  for (const double t : log.job_finish_s) max_t = std::max(max_t, t);
  const auto frame_count = static_cast<std::size_t>(
      std::floor(max_t / every_s)) + 1;
  std::vector<PoolTimelineFrame> frames(frame_count);
  for (std::size_t i = 0; i < frame_count; ++i) {
    frames[i].start_s = every_s * static_cast<double>(i);
    frames[i].t_s =
        std::min(every_s * static_cast<double>(i + 1), std::max(max_t, 0.0));
  }
  const auto index_of = [&](double t) {
    return std::min(static_cast<std::size_t>(std::floor(t / every_s)),
                    frame_count - 1);
  };
  for (const auto& [t, mb] : log.placement_mb) {
    frames[index_of(t)].interval_mb += mb;
  }
  for (const double t : log.job_finish_s) {
    ++frames[index_of(t)].jobs_finished;
  }
  return frames;
}

struct PlacementOutcome {
  double end_time = 0.0;   ///< when the machine frees (eviction or finish)
  bool job_finished = false;
};

// Simulate one whole placement synchronously: the eviction instant is known
// (spell end), so the recovery/work/checkpoint walk inside it is
// deterministic given the sampled transfer times.
PlacementOutcome run_placement(std::size_t job_id, double start,
                               double eviction_time, double uptime_at_start,
                               double remaining_work, bool has_checkpoint,
                               const dist::DistributionPtr& model,
                               const PoolSimConfig& cfg, numerics::Rng& rng,
                               predict::FailurePredictor* predictor,
                               PoolSimJobStats& stats,
                               double& remaining_work_out,
                               bool& has_checkpoint_out) {
  double now = start;
  double uptime = uptime_at_start;
  double measured_cost =
      cfg.link.expected_transfer_seconds(cfg.checkpoint_size_mb);

  // Fault-prediction scenario: the oracle sees this placement's hidden
  // reclamation instant (the spell end) and emits its alerts up front; the
  // walk below consults them through the window-aware proactive rule. The
  // policy only ever sees alert times — never Alert::truth.
  std::vector<predict::Alert> alerts;
  std::optional<predict::ProactivePolicy> policy;
  if (predictor != nullptr && eviction_time > now) {
    alerts = predictor->alerts_for_spell(now, eviction_time);
    policy.emplace(predictor->config());
  }
  std::size_t alert_idx = 0;

  struct Transfer {
    double duration;  ///< elapsed wire time (cut at budget if interrupted)
    double moved_mb;  ///< pro-rated bytes
    bool completed;
  };
  const auto transfer = [&](double budget) -> Transfer {
    const double full =
        cfg.link.sample_transfer_seconds(cfg.checkpoint_size_mb, rng);
    if (full <= budget) return {full, cfg.checkpoint_size_mb, true};
    return {budget,
            full > 0.0 ? cfg.checkpoint_size_mb * budget / full : 0.0,
            false};
  };
  // Uncontended transfers start the instant they are requested and own the
  // sampled link alone, so the span degenerates to a pure service phase:
  // zero wait, solo == duration, dilation == 0. Keeping the record anyway
  // means job span trees (and the partition invariant) hold in both
  // engines, and a contended-vs-uncontended attribution diff reads off
  // exactly what contention cost.
  const auto record_span = [&](double t0, const Transfer& tr,
                               std::uint8_t kind) {
    if (cfg.spans == nullptr) return;
    obs::TransferTimings t;
    t.job_id = job_id;
    t.kind = kind;
    t.megabytes = cfg.checkpoint_size_mb;
    t.moved_mb = tr.moved_mb;
    t.arrival_s = t0;
    t.eligible_s = t0;
    t.start_s = t0;
    t.end_s = t0 + tr.duration;
    t.solo_service_s = tr.duration;
    t.entered_service = true;
    t.completed = tr.completed;
    cfg.spans->record_transfer(t);
  };

  // Recovery of the last checkpoint, if any exists.
  if (has_checkpoint) {
    const auto [dur, moved, ok] = transfer(eviction_time - now);
    record_span(now, {dur, moved, ok}, /*kind=*/1);
    now += dur;
    uptime += dur;
    stats.moved_mb += moved;
    if (!ok) {
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    measured_cost = dur;
  }

  for (;;) {
    core::IntervalCosts costs;
    costs.checkpoint = measured_cost;
    costs.recovery = measured_cost;
    const core::CheckpointOptimizer optimizer(
        core::MarkovModel(model, costs), cfg.optimizer);
    double t_opt = optimizer.optimize(uptime).work_time;
    if (policy.has_value()) {
      // A predictor that catches a fraction r̃ of reclamations lets the
      // periodic schedule relax: stretch T_opt by 1/sqrt(1 - r̃). With
      // recall 0 the factor is exactly 1.0, preserving bit-identity.
      t_opt *= predict::prediction_period_factor(predictor->config(),
                                                 measured_cost);
    }
    double chunk = std::min(t_opt, remaining_work);

    // Scan alerts landing inside this work chunk; the first one the window
    // rule acts on truncates the chunk so the checkpoint starts at the
    // alert's optimal in-window delay.
    bool proactive = false;
    if (policy.has_value()) {
      while (alert_idx < alerts.size() && alerts[alert_idx].time_s <= now) {
        ++alert_idx;
      }
      for (std::size_t i = alert_idx;
           i < alerts.size() && alerts[i].time_s < now + chunk; ++i) {
        const double work_at_risk = alerts[i].time_s - now;
        const auto decision = policy->decide(work_at_risk, measured_cost);
        if (decision.action == predict::ProactiveAction::kSkip) continue;
        const double start_at = alerts[i].time_s + decision.delay_s;
        // The periodic checkpoint beats a delayed proactive start.
        if (start_at >= now + chunk) continue;
        chunk = start_at - now;
        proactive = true;
        break;
      }
    }

    if (now + chunk > eviction_time) {
      // Evicted mid-computation: work since the last checkpoint is lost.
      stats.lost_work_s += eviction_time - now;
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    now += chunk;
    uptime += chunk;

    // Transfer: a periodic checkpoint, an alert-driven proactive one, or
    // the final result upload.
    const auto [dur, moved, ok] = transfer(eviction_time - now);
    record_span(now, {dur, moved, ok}, proactive ? std::uint8_t{2}
                                                 : std::uint8_t{0});
    stats.moved_mb += moved;
    now += dur;
    uptime += dur;
    if (!ok) {
      // The chunk was never committed.
      stats.lost_work_s += chunk;
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    stats.useful_work_s += chunk;
    if (proactive) ++stats.proactive_checkpoints;
    remaining_work -= chunk;
    has_checkpoint = true;
    measured_cost = dur;
    if (remaining_work <= 1e-9) {
      remaining_work_out = 0.0;
      has_checkpoint_out = true;
      return {now, true};
    }
  }
}

struct JobState {
  double remaining_work = 0.0;
  bool has_checkpoint = false;
  PoolSimJobStats stats;
};

/// The original per-placement synchronous walk: each transfer samples an
/// independent BandwidthModel duration (no cross-job network interaction).
void run_uncontended(const std::vector<TimelinePool::MachineSpec>& specs,
                     const PoolSimConfig& config,
                     const std::vector<dist::DistributionPtr>& fitted,
                     TimelinePool& pool, Matchmaker& matchmaker,
                     numerics::Rng& transfer_rng,
                     predict::FailurePredictor* predictor,
                     std::vector<JobState>& jobs, double& last_finish,
                     UncontendedTimelineLog* tl) {
  (void)pool;
  // Min-heap of (time, job) negotiation events.
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    queue.push({0.0, j});
    if (config.spans != nullptr) config.spans->open_job(j, 0.0);
  }

  std::vector<bool> occupied(specs.size(), false);
  std::vector<double> occupied_until(specs.size(), 0.0);

  while (!queue.empty()) {
    const auto [now, job_id] = queue.top();
    queue.pop();
    if (now >= config.horizon_s) continue;
    JobState& job = jobs[job_id];

    // Free machines whose placements have ended.
    for (std::size_t m = 0; m < occupied.size(); ++m) {
      if (occupied[m] && occupied_until[m] <= now) occupied[m] = false;
    }

    const auto match = matchmaker.place(now, occupied);
    if (!match) {
      // Nothing idle: wait for the next negotiation cycle.
      queue.push({now + config.negotiation_interval_s, job_id});
      continue;
    }
    ++job.stats.placements;
    pool_metrics().placements.add();
    const double eviction_time = now + match->remaining_s;
    double remaining_after = job.remaining_work;
    bool ckpt_after = job.has_checkpoint;
    const double mb_before = job.stats.moved_mb;
    const std::size_t evictions_before = job.stats.evictions;
    const auto outcome = run_placement(
        job_id, now, eviction_time, match->uptime_s, job.remaining_work,
        job.has_checkpoint, fitted[match->machine_index], config,
        transfer_rng, predictor, job.stats, remaining_after, ckpt_after);
    job.remaining_work = remaining_after;
    job.has_checkpoint = ckpt_after;
    occupied[match->machine_index] = true;
    occupied_until[match->machine_index] = outcome.end_time;
    pool_metrics().evictions.add(job.stats.evictions - evictions_before);
    pool_metrics().mb_moved.add(job.stats.moved_mb - mb_before);
    if (tl != nullptr) {
      // Whole-placement MB attributed at the placement's end instant: the
      // addends are the same deltas job stats accumulate, so the bucketed
      // timeline partitions total_moved_mb() exactly.
      tl->placement_mb.emplace_back(outcome.end_time,
                                    job.stats.moved_mb - mb_before);
    }
    if (config.tracer != nullptr) {
      config.tracer->record_complete("placement", "condor", now,
                                     outcome.end_time - now, job_id,
                                     job.stats.moved_mb - mb_before,
                                     match->machine_index);
    }

    if (outcome.job_finished) {
      job.stats.finished = true;
      job.stats.completion_s = outcome.end_time;
      last_finish = std::max(last_finish, outcome.end_time);
      pool_metrics().finished.add();
      if (config.spans != nullptr) {
        config.spans->close_job(job_id, outcome.end_time, /*finished=*/true);
      }
      if (tl != nullptr) tl->job_finish_s.push_back(outcome.end_time);
      if (config.tracer != nullptr) {
        config.tracer->record_instant("job.finished", "condor",
                                      outcome.end_time, job_id,
                                      job.stats.useful_work_s,
                                      match->machine_index);
      }
    } else {
      // Re-queue at the next negotiation after the eviction.
      queue.push(
          {outcome.end_time + config.negotiation_interval_s, job_id});
    }
  }
  if (config.spans != nullptr) {
    // Same unfinished-job convention as the contended engine: close at the
    // horizon, the makespan an incomplete run reports.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!jobs[j].stats.finished) {
        config.spans->close_job(j, config.horizon_s, /*finished=*/false);
      }
    }
  }
}

/// Contended mode: a global discrete-event walk where every recovery and
/// checkpoint transfer is a request against a server::ServerFleet (K
/// sharded checkpoint servers; K=1 is the single-server case). Jobs
/// interleave in simulated time, so simultaneous checkpoints queue for
/// slots and slow each other down — the pool-wide interaction the paper's
/// conclusion flags as unmodeled.
class ContendedEngine {
 public:
  ContendedEngine(const std::vector<TimelinePool::MachineSpec>& specs,
                  const PoolSimConfig& config,
                  const std::vector<dist::DistributionPtr>& fitted,
                  Matchmaker& matchmaker,
                  const server::FleetConfig& fleet_config,
                  std::uint64_t server_seed,
                  predict::FailurePredictor* predictor,
                  std::vector<JobState>& jobs, double& last_finish)
      : config_(config),
        fitted_(fitted),
        matchmaker_(matchmaker),
        fleet_(fleet_config, server_seed, config.tracer, config.spans),
        predictor_(predictor),
        jobs_(jobs),
        last_finish_(last_finish),
        occupied_(specs.size(), false),
        occupied_until_(specs.size(), 0.0),
        states_(jobs.size()) {
    if (config.snapshot_every_s > 0.0) {
      timeline_ = std::make_unique<FleetTimeline>(
          config.snapshot_every_s, fleet_.shard_count(),
          fleet_.config().server.capacity_mbps);
    }
    if (predictor_ != nullptr) policy_.emplace(predictor_->config());
  }

  void run() {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      push_event(0.0, EventKind::kNegotiate, j, states_[j].generation);
      // All jobs are submitted at t=0; each gets one root span the server's
      // transfer spans (and our backoff/rejection spans) parent under.
      if (config_.spans != nullptr) config_.spans->open_job(j, 0.0);
    }
    for (;;) {
      const double heap_t =
          heap_.empty() ? std::numeric_limits<double>::infinity()
                        : std::get<0>(heap_.top());
      const auto server_next = fleet_.next_event_s();
      const double server_t =
          server_next.value_or(std::numeric_limits<double>::infinity());
      if (!std::isfinite(heap_t) && !std::isfinite(server_t)) break;
      // Server completions win ties: a transfer that finishes exactly at
      // the eviction instant counts as completed, matching the synchronous
      // walk's `full <= budget` rule.
      if (server_t <= heap_t) {
        observe_time(server_t);
        for (const auto& done : fleet_.advance_to(server_t)) {
          handle_completion(done);
        }
        continue;
      }
      const auto [t, seq, kind, job_id, gen] = heap_.top();
      (void)seq;
      heap_.pop();
      if (gen != states_[job_id].generation) continue;  // stale placement
      // Cut timeline frames only at *live* events: stale ones (cancelled
      // placements long in the future) touch nothing, and skipping them
      // keeps the timeline from trailing empty frames past the makespan.
      // Live processing time is monotone, so no event's bytes are split.
      observe_time(t);
      switch (kind) {
        case EventKind::kNegotiate:
          handle_negotiate(job_id, t);
          break;
        case EventKind::kWorkDone:
          handle_work_done(job_id, t);
          break;
        case EventKind::kRetry:
          // The backoff span closes where the retry fires; the new
          // submission's own spans start from here.
          record_backoff_span(job_id, t);
          submit_transfer(job_id, t);
          break;
        case EventKind::kEvict:
          handle_evict(job_id, t);
          break;
        case EventKind::kAlert:
          handle_alert(job_id, t);
          break;
      }
    }
    if (config_.spans != nullptr) {
      // Jobs the horizon cut off close unfinished at the horizon — the same
      // convention makespan_s reports for incomplete runs.
      for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (!jobs_[j].stats.finished) {
          config_.spans->close_job(j, config_.horizon_s, /*finished=*/false);
        }
      }
    }
  }

  [[nodiscard]] server::FleetStats fleet_stats() const {
    return fleet_.stats();
  }

  /// Flush the open interval and hand over the timeline (empty when
  /// snapshot_every_s was 0). Call once, after run().
  [[nodiscard]] std::vector<PoolTimelineFrame> take_timeline() {
    if (timeline_ == nullptr) return {};
    return timeline_->finish(last_t_, fleet_);
  }

 private:
  enum class EventKind : std::uint8_t {
    kNegotiate,
    kWorkDone,
    kRetry,
    kEvict,
    kAlert  ///< predictor alert lands (prediction scenario only)
  };
  enum class Phase : std::uint8_t {
    kIdle,
    kWorking,
    kTransferring,
    kBackoff,
    kDone
  };
  using TransferKind = server::TransferKind;

  struct PerJob {
    Phase phase = Phase::kIdle;
    std::uint32_t generation = 0;  ///< bumps at placement end; stales events
    std::size_t machine = 0;
    double placement_start = 0.0;
    double eviction_time = 0.0;
    double uptime_at_start = 0.0;
    double measured_cost = 0.0;  ///< last observed transfer cost (wait+wire)
    double chunk = 0.0;          ///< work chunk awaiting its checkpoint
    double work_start = 0.0;
    /// Scheduled checkpoint instant of the current chunk. handle_work_done
    /// only fires when the event's time matches exactly — an alert that
    /// truncates the chunk reschedules it here and the superseded kWorkDone
    /// (still in the heap) no-ops.
    double work_done_t = 0.0;
    /// The current chunk's checkpoint was rescheduled by an alert.
    bool pending_proactive = false;
    TransferKind transfer_kind = TransferKind::kRecovery;
    server::TransferId transfer_id = 0;
    double transfer_submit_s = 0.0;
    std::uint32_t backoff_attempts = 0;  ///< resets on a completed transfer
    double backoff_start = 0.0;          ///< when the current backoff began
    double placement_mb = 0.0;           ///< bytes moved this placement
  };

  void push_event(double t, EventKind kind, std::size_t job,
                  std::uint32_t gen) {
    heap_.push({t, next_seq_++, kind, job, gen});
  }

  /// Record the engine's processing clock and cut any due timeline frames.
  void observe_time(double t) {
    last_t_ = t;
    if (timeline_ != nullptr) timeline_->advance(t, fleet_);
  }

  void handle_negotiate(std::size_t job_id, double now) {
    if (now >= config_.horizon_s) return;  // job reports unfinished
    for (std::size_t m = 0; m < occupied_.size(); ++m) {
      if (occupied_[m] && occupied_until_[m] <= now) occupied_[m] = false;
    }
    const auto match = matchmaker_.place(now, occupied_);
    if (!match) {
      push_event(now + config_.negotiation_interval_s, EventKind::kNegotiate,
                 job_id, states_[job_id].generation);
      return;
    }
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    ++job.stats.placements;
    pool_metrics().placements.add();
    st.machine = match->machine_index;
    st.placement_start = now;
    st.eviction_time = now + match->remaining_s;
    st.uptime_at_start = match->uptime_s;
    st.placement_mb = 0.0;
    st.measured_cost =
        config_.checkpoint_size_mb / fleet_.config().server.capacity_mbps;
    occupied_[st.machine] = true;
    occupied_until_[st.machine] = st.eviction_time;
    push_event(st.eviction_time, EventKind::kEvict, job_id, st.generation);
    if (predictor_ != nullptr && st.eviction_time > now) {
      // The oracle sees the placement's hidden reclamation instant and
      // drops its alerts into the event stream; the generation stamp voids
      // them if the placement ends early (job finished).
      for (const auto& a : predictor_->alerts_for_spell(now,
                                                        st.eviction_time)) {
        push_event(a.time_s, EventKind::kAlert, job_id, st.generation);
      }
    }

    if (job.has_checkpoint) {
      st.transfer_kind = TransferKind::kRecovery;
      if (st.backoff_attempts > 0) {
        // This client's last transfer was interrupted or rejected: back off
        // before hammering the server again.
        st.phase = Phase::kBackoff;
        st.backoff_start = now;
        push_event(
            now + fleet_.backoff().delay_s(st.backoff_attempts - 1),
            EventKind::kRetry, job_id, st.generation);
      } else {
        submit_transfer(job_id, now);
      }
    } else {
      enter_work(job_id, now);
    }
  }

  void enter_work(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    const double uptime = st.uptime_at_start + (now - st.placement_start);
    core::IntervalCosts costs;
    costs.checkpoint = st.measured_cost;
    costs.recovery = st.measured_cost;
    const core::CheckpointOptimizer optimizer(
        core::MarkovModel(fitted_[st.machine], costs), config_.optimizer);
    double t_opt = optimizer.optimize(uptime).work_time;
    if (predictor_ != nullptr) {
      // Aupy et al. period stretch: the predictor absorbs a fraction r̃ of
      // reclamations, so the reactive schedule relaxes by 1/sqrt(1 - r̃).
      // Exactly 1.0 at recall 0, preserving bit-identity.
      t_opt *= predict::prediction_period_factor(predictor_->config(),
                                                 st.measured_cost);
    }
    st.chunk = std::min(t_opt, job.remaining_work);
    st.phase = Phase::kWorking;
    st.work_start = now;
    st.work_done_t = now + st.chunk;
    st.pending_proactive = false;
    // If the chunk outlives the availability spell, the eviction event
    // (already queued) fires first and charges the lost work.
    push_event(st.work_done_t, EventKind::kWorkDone, job_id, st.generation);
  }

  void handle_work_done(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    // Exact-time guard: an alert that truncated the chunk rescheduled the
    // checkpoint, leaving the original kWorkDone in the heap. The scheduled
    // instant is stored verbatim from the push, so the comparison is exact
    // (never a recomputation) and the legacy path — one kWorkDone per
    // enter_work — always passes it.
    if (st.phase != Phase::kWorking || now != st.work_done_t) return;
    st.transfer_kind = st.pending_proactive ? TransferKind::kProactive
                                            : TransferKind::kCheckpoint;
    st.pending_proactive = false;
    submit_transfer(job_id, now);
  }

  /// A predictor alert lands while (possibly) working: apply the window
  /// rule against the work currently at risk and, when it acts inside the
  /// current chunk, pull the checkpoint forward to the alert's optimal
  /// in-window start.
  void handle_alert(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    if (st.phase != Phase::kWorking) return;  // mid-transfer/backoff: ignore
    const auto decision =
        policy_->decide(now - st.work_start, st.measured_cost);
    if (decision.action == predict::ProactiveAction::kSkip) return;
    const double start_at = now + decision.delay_s;
    // The already-scheduled checkpoint beats a delayed proactive start.
    if (start_at >= st.work_done_t) return;
    st.chunk = start_at - st.work_start;
    st.work_done_t = start_at;
    st.pending_proactive = true;
    push_event(start_at, EventKind::kWorkDone, job_id, st.generation);
  }

  void submit_transfer(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    server::ServerTransferRequest req;
    req.job_id = job_id;
    req.megabytes = config_.checkpoint_size_mb;
    // The traffic class rides the request: admission and the schedulers
    // give recoveries headroom and service priority (admission.hpp), and
    // the fleet's static routing shards on the submitting machine.
    req.kind = st.transfer_kind;
    req.machine_index = st.machine;
    // Only checkpoint-class transfers (periodic or proactive) carry the
    // urgency hint: a checkpoint racing the machine's predicted death has
    // an uncommitted chunk at risk, so jumping the queue saves real work.
    // A recovery has nothing committed yet — fast-tracking it onto a
    // machine predicted to die soon just starts a chunk that the eviction
    // then destroys, so recoveries queue FIFO within their class.
    if (st.transfer_kind != TransferKind::kRecovery) {
      req.predicted_remaining_s = predicted_remaining(job_id, now);
    }
    const auto outcome = fleet_.submit(req, now);
    if (outcome.status == server::SubmitStatus::kRejected) {
      ++job.stats.rejected_submits;
      ++st.backoff_attempts;
      st.phase = Phase::kBackoff;
      st.backoff_start = now;
      push_event(now + fleet_.backoff().delay_s(st.backoff_attempts - 1),
                 EventKind::kRetry, job_id, st.generation);
      return;
    }
    st.phase = Phase::kTransferring;
    st.transfer_id = outcome.id;
    st.transfer_submit_s = now;
  }

  /// Close the job's current backoff interval as a span ending at `end_s`
  /// (the retry firing, or the eviction that cancels it).
  void record_backoff_span(std::size_t job_id, double end_s) {
    if (config_.spans == nullptr) return;
    const PerJob& st = states_[job_id];
    if (st.phase != Phase::kBackoff) return;
    config_.spans->record_backoff(
        job_id, st.backoff_start, end_s,
        static_cast<std::uint8_t>(st.transfer_kind));
  }

  /// What the urgency scheduler orders by: the fitted model's expected
  /// remaining availability of the submitting machine right now (same
  /// estimate kModelRanked matchmaking uses).
  [[nodiscard]] double predicted_remaining(std::size_t job_id,
                                           double now) const {
    const PerJob& st = states_[job_id];
    const double uptime = st.uptime_at_start + (now - st.placement_start);
    try {
      return dist::Conditional(fitted_[st.machine], uptime).mean();
    } catch (const std::exception&) {
      return fitted_[st.machine]->mean();  // survival underflow at old age
    }
  }

  void handle_completion(const server::ServerCompletion& done) {
    const auto job_id = static_cast<std::size_t>(done.job_id);
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    const double now = done.finish_s;
    job.stats.moved_mb += done.megabytes;
    job.stats.server_wait_s += done.wait_s();
    st.placement_mb += done.megabytes;
    st.backoff_attempts = 0;
    pool_metrics().mb_moved.add(done.megabytes);
    if (timeline_ != nullptr) {
      const std::size_t shard = server::ServerFleet::shard_of(done.id);
      timeline_->add_transfer(shard, done.megabytes);
      timeline_->add_wait(shard, done.wait_s());
    }
    // The cost the job *felt* — queueing plus wire time — is what it feeds
    // back into the planner as C and R, so schedules adapt to congestion.
    // Smoothed (EWMA), not raw: a single lucky fast transfer would collapse
    // the planner's C, trigger a burst of frequent checkpoints, lengthen
    // everyone's queue, and oscillate — the smoothing damps that closed
    // loop regardless of scheduling policy.
    const double sample = std::max(now - st.transfer_submit_s, 1e-6);
    st.measured_cost = 0.5 * st.measured_cost + 0.5 * sample;

    if (st.transfer_kind == TransferKind::kRecovery) {
      enter_work(job_id, now);
      return;
    }
    // Checkpoint (periodic, proactive, or final result upload) committed.
    if (st.transfer_kind == TransferKind::kProactive) {
      ++job.stats.proactive_checkpoints;
    }
    job.stats.useful_work_s += st.chunk;
    job.remaining_work -= st.chunk;
    job.has_checkpoint = true;
    if (job.remaining_work <= 1e-9) {
      finish_job(job_id, now);
    } else {
      enter_work(job_id, now);
    }
  }

  void finish_job(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    job.stats.finished = true;
    job.stats.completion_s = now;
    last_finish_ = std::max(last_finish_, now);
    pool_metrics().finished.add();
    if (timeline_ != nullptr) timeline_->job_finished();
    occupied_until_[st.machine] = now;
    if (config_.tracer != nullptr) {
      config_.tracer->record_complete("placement", "condor",
                                      st.placement_start,
                                      now - st.placement_start, job_id,
                                      st.placement_mb, st.machine);
      config_.tracer->record_instant("job.finished", "condor", now, job_id,
                                     job.stats.useful_work_s, st.machine);
    }
    if (config_.spans != nullptr) {
      config_.spans->close_job(job_id, now, /*finished=*/true);
    }
    st.phase = Phase::kDone;
    ++st.generation;  // cancels the pending eviction event
  }

  void handle_evict(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    switch (st.phase) {
      case Phase::kWorking:
        job.stats.lost_work_s += now - st.work_start;
        break;
      case Phase::kTransferring: {
        const auto removal = fleet_.remove(st.transfer_id, now);
        job.stats.moved_mb += removal.moved_mb;
        st.placement_mb += removal.moved_mb;
        pool_metrics().mb_moved.add(removal.moved_mb);
        if (timeline_ != nullptr) {
          timeline_->add_transfer(
              server::ServerFleet::shard_of(st.transfer_id),
              removal.moved_mb);
        }
        if (st.transfer_kind != TransferKind::kRecovery) {
          job.stats.lost_work_s += st.chunk;  // never committed
        }
        ++st.backoff_attempts;  // interrupted: retry backs off next time
        break;
      }
      case Phase::kBackoff:
        // The pending retry dies with the placement; truncate its backoff
        // span at the eviction so attributed backoff time is time actually
        // spent waiting, not the schedule that never ran out.
        record_backoff_span(job_id, now);
        break;
      case Phase::kIdle:
      case Phase::kDone:
        break;
    }
    ++job.stats.evictions;
    pool_metrics().evictions.add();
    if (config_.tracer != nullptr) {
      config_.tracer->record_complete("placement", "condor",
                                      st.placement_start,
                                      now - st.placement_start, job_id,
                                      st.placement_mb, st.machine);
    }
    st.phase = Phase::kIdle;
    ++st.generation;  // cancels pending work/retry events
    push_event(now + config_.negotiation_interval_s, EventKind::kNegotiate,
               job_id, st.generation);
  }

  const PoolSimConfig& config_;
  const std::vector<dist::DistributionPtr>& fitted_;
  Matchmaker& matchmaker_;
  server::ServerFleet fleet_;
  predict::FailurePredictor* predictor_;        ///< null = legacy engine
  std::optional<predict::ProactivePolicy> policy_;
  std::vector<JobState>& jobs_;
  double& last_finish_;
  std::vector<bool> occupied_;
  std::vector<double> occupied_until_;
  std::vector<PerJob> states_;
  std::unique_ptr<FleetTimeline> timeline_;  ///< null when cadence is 0
  double last_t_ = 0.0;  ///< latest event-processing time (monotone)

  /// (time, sequence, kind, job, generation): sequence keeps equal-time
  /// ordering deterministic.
  using Event =
      std::tuple<double, std::uint64_t, EventKind, std::size_t, std::uint32_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace

PoolSimResult run_pool_simulation(
    const std::vector<TimelinePool::MachineSpec>& machine_specs,
    const PoolSimConfig& config) {
  if (machine_specs.empty()) {
    throw std::invalid_argument("run_pool_simulation: need machines");
  }
  if (config.job_count == 0 || !(config.work_per_job_s > 0.0) ||
      !(config.negotiation_interval_s > 0.0) || !(config.horizon_s > 0.0) ||
      !(config.snapshot_every_s >= 0.0)) {
    throw std::invalid_argument("run_pool_simulation: bad config");
  }
  if (config.server.has_value() && config.fleet.has_value()) {
    throw std::invalid_argument(
        "run_pool_simulation: set `server` (1-shard shorthand) or `fleet`, "
        "not both");
  }
  // `server` is sugar for a 1-shard fleet; from here on there is one code
  // path, and K=1 is bit-identical to the old single-server engine.
  std::optional<server::FleetConfig> fleet_config = config.fleet;
  if (!fleet_config.has_value() && config.server.has_value()) {
    server::FleetConfig fc;
    fc.server = *config.server;
    fleet_config = fc;
  }

  pool_metrics().runs.add();
  obs::ScopedTimer run_timer(&pool_metrics().wall_s);

  numerics::Rng master(config.seed);

  // Monitor histories → fitted models (what the planner is allowed to see).
  std::vector<dist::DistributionPtr> fitted;
  fitted.reserve(machine_specs.size());
  for (const auto& spec : machine_specs) {
    numerics::Rng hist_rng = master.split();
    std::vector<double> history(config.train_count);
    for (auto& h : history) h = spec.availability_law->sample(hist_rng);
    dist::DistributionPtr model;
    try {
      model = core::Planner::fit_model(history, config.family);
    } catch (const std::exception&) {
      model = spec.availability_law;  // degenerate history
    }
    fitted.push_back(std::move(model));
  }

  TimelinePool pool(machine_specs, master.next_u64());
  Matchmaker matchmaker(pool, fitted, config.policy, master.next_u64());
  numerics::Rng transfer_rng = master.split();

  std::vector<JobState> jobs(config.job_count);
  for (auto& j : jobs) j.remaining_work = config.work_per_job_s;

  PoolSimResult result;
  double last_finish = 0.0;
  std::optional<predict::FailurePredictor> predictor;
  if (fleet_config.has_value()) {
    // The predictor's seed is drawn strictly AFTER every legacy stream
    // (histories, pool, matchmaker, transfer RNG, server seed): with the
    // predictor unset no draw happens and every stream is untouched, so
    // legacy runs stay bit-identical.
    const std::uint64_t server_seed = master.next_u64();
    if (config.predictor.has_value()) {
      predictor.emplace(*config.predictor, master.next_u64());
    }
    ContendedEngine engine(machine_specs, config, fitted, matchmaker,
                           *fleet_config, server_seed,
                           predictor.has_value() ? &*predictor : nullptr,
                           jobs, last_finish);
    engine.run();
    result.server_enabled = true;
    result.fleet = engine.fleet_stats();
    result.server = result.fleet.total;
    result.timeline = engine.take_timeline();
  } else {
    if (config.predictor.has_value()) {
      predictor.emplace(*config.predictor, master.next_u64());
    }
    UncontendedTimelineLog tl;
    run_uncontended(machine_specs, config, fitted, pool, matchmaker,
                    transfer_rng,
                    predictor.has_value() ? &*predictor : nullptr, jobs,
                    last_finish,
                    config.snapshot_every_s > 0.0 ? &tl : nullptr);
    if (config.snapshot_every_s > 0.0) {
      result.timeline =
          build_uncontended_timeline(tl, config.snapshot_every_s);
    }
  }
  if (predictor.has_value()) {
    result.predictor_enabled = true;
    result.predictor = predictor->stats();
  }

  result.jobs.reserve(jobs.size());
  bool all_finished = true;
  for (auto& j : jobs) {
    all_finished &= j.stats.finished;
    result.jobs.push_back(j.stats);
  }
  result.makespan_s = all_finished ? last_finish : config.horizon_s;
  return result;
}

}  // namespace harvest::condor
