#include "harvest/condor/pool_simulation.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "harvest/condor/megapool.hpp"
#include "harvest/condor/pool_engine.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/obs/prof.hpp"
#include "harvest/obs/timer.hpp"
#include "harvest/server/cli_options.hpp"

namespace harvest::condor {

std::size_t PoolSimResult::finished_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.finished) ++n;
  }
  return n;
}

double PoolSimResult::mean_completion_s() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.finished) {
      sum += j.completion_s;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double PoolSimResult::total_moved_mb() const {
  double mb = 0.0;
  for (const auto& j : jobs) mb += j.moved_mb;
  return mb;
}

std::size_t PoolSimResult::total_evictions() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.evictions;
  return n;
}

double PoolSimResult::total_useful_work_s() const {
  double s = 0.0;
  for (const auto& j : jobs) s += j.useful_work_s;
  return s;
}

double PoolSimResult::total_lost_work_s() const {
  double s = 0.0;
  for (const auto& j : jobs) s += j.lost_work_s;
  return s;
}

std::size_t PoolSimResult::total_proactive_checkpoints() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.proactive_checkpoints;
  return n;
}

std::string timeline_csv(const std::vector<PoolTimelineFrame>& timeline) {
  std::string out =
      "frame,start_s,end_s,interval_mb,jobs_finished,shard,queue_depth,"
      "active,pending_mb,moved_mb,wait_p50_s,wait_p99_s,utilization,"
      "storms_deferred\n";
  char buf[256];
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const auto& f = timeline[i];
    const auto prefix = [&](char* p, std::size_t n) {
      return static_cast<std::size_t>(std::snprintf(
          p, n, "%zu,%.6g,%.6g,%.6g,%zu,", i, f.start_s, f.t_s,
          f.interval_mb, f.jobs_finished));
    };
    if (f.shards.empty()) {
      // Uncontended runs carry no shard telemetry: one row per frame with
      // the shard columns left empty.
      prefix(buf, sizeof(buf));
      out += buf;
      out += ",,,,,,,\n";
      continue;
    }
    for (std::size_t k = 0; k < f.shards.size(); ++k) {
      const auto& s = f.shards[k];
      const std::size_t off = prefix(buf, sizeof(buf));
      std::snprintf(buf + off, sizeof(buf) - off,
                    "%zu,%zu,%zu,%.6g,%.6g,%.6g,%.6g,%.6g,%llu\n", k,
                    s.queue_depth, s.active, s.pending_mb, s.moved_mb,
                    s.wait_p50_s, s.wait_p99_s, s.utilization,
                    static_cast<unsigned long long>(s.storms_deferred));
      out += buf;
    }
  }
  return out;
}

void write_timeline_csv(const std::string& path,
                        const std::vector<PoolTimelineFrame>& timeline) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_timeline_csv: cannot open " + path);
  }
  out << timeline_csv(timeline);
  if (!out) {
    throw std::runtime_error("write_timeline_csv: write failed: " + path);
  }
}

std::string to_string(PoolEngine engine) {
  switch (engine) {
    case PoolEngine::kAuto:
      return "auto";
    case PoolEngine::kUncontended:
      return "uncontended";
    case PoolEngine::kContended:
      return "contended";
    case PoolEngine::kMegapool:
      return "megapool";
  }
  return "unknown";
}

PoolEngine pool_engine_from_string(const std::string& name) {
  if (name == "auto") return PoolEngine::kAuto;
  if (name == "uncontended") return PoolEngine::kUncontended;
  if (name == "contended") return PoolEngine::kContended;
  if (name == "megapool") return PoolEngine::kMegapool;
  throw std::invalid_argument("unknown pool engine: " + name);
}

void apply_cli_options(PoolSimConfig& config,
                       const server::CliOptions& opts) {
  if (opts.engine) config.engine = pool_engine_from_string(*opts.engine);
  if (opts.megapool_threads) config.megapool.threads = *opts.megapool_threads;
  if (opts.megapool_shards) config.megapool.shards = *opts.megapool_shards;
  if (opts.any()) config.scenario.fleet = opts.fleet_config();
}

PoolSimValidation PoolSimConfig::validate() const {
  if (job_count == 0 || !(work_per_job_s > 0.0) ||
      !(negotiation_interval_s > 0.0) || !(horizon_s > 0.0) ||
      !(hooks.snapshot_every_s >= 0.0)) {
    throw std::invalid_argument("PoolSimConfig: bad config");
  }
  if (server.has_value() && scenario.fleet.has_value()) {
    throw std::invalid_argument(
        "PoolSimConfig: set `server` (the deprecated 1-shard shorthand) or "
        "`scenario.fleet`, not both");
  }

  PoolSimValidation v;
  v.fleet = scenario.fleet;
  if (!v.fleet.has_value() && server.has_value()) {
    // The single place the deprecated shorthand desugars: a 1-shard fleet
    // is bit-identical to driving the server directly.
    server::FleetConfig fc;
    fc.server = *server;
    v.fleet = fc;
    v.warnings.push_back(
        "`server` is deprecated; use scenario.fleet (it desugars to a "
        "1-shard fleet, bit-identical)");
  }

  switch (engine) {
    case PoolEngine::kAuto:
      v.engine = v.fleet.has_value() ? PoolEngine::kContended
                                     : PoolEngine::kUncontended;
      break;
    case PoolEngine::kUncontended:
      if (v.fleet.has_value()) {
        throw std::invalid_argument(
            "PoolSimConfig: engine kUncontended cannot run a fleet "
            "scenario; use kContended, kMegapool, or kAuto");
      }
      v.engine = PoolEngine::kUncontended;
      break;
    case PoolEngine::kContended:
      if (!v.fleet.has_value()) {
        throw std::invalid_argument(
            "PoolSimConfig: engine kContended needs scenario.fleet");
      }
      v.engine = PoolEngine::kContended;
      break;
    case PoolEngine::kMegapool:
      // Runs whichever spine the scenario needs; no constraint.
      v.engine = PoolEngine::kMegapool;
      break;
  }

  if (v.engine != PoolEngine::kMegapool &&
      (megapool.shards != 0 || megapool.threads != 0)) {
    v.warnings.push_back("megapool tuning is ignored under engine `" +
                         to_string(v.engine) + "`");
  }
  if (v.fleet.has_value()) {
    auto fleet_validation = v.fleet->validate();
    for (auto& w : fleet_validation.warnings) {
      v.warnings.push_back("fleet: " + std::move(w));
    }
  }
  if (scenario.predictor.has_value()) scenario.predictor->validate();
  return v;
}

PoolSimResult run_pool_simulation(
    const std::vector<TimelinePool::MachineSpec>& machine_specs,
    const PoolSimConfig& config) {
  if (machine_specs.empty()) {
    throw std::invalid_argument("run_pool_simulation: need machines");
  }
  const PoolSimValidation v = config.validate();

  engine::pool_metrics().runs.add();
  obs::ScopedTimer run_timer(&engine::pool_metrics().wall_s);
  // Self-profiling rides along like every other hook: activating a profiler
  // touches no RNG stream, so results are bit-identical with it attached or
  // not (pinned by the prof tests). The scope restores the previous active
  // profiler on every exit path.
  obs::prof::ActivationScope prof_scope(config.hooks.profiler);

  // The megapool engine owns a worker pool; the other engines never
  // parallelize (threads == 1 forces the megapool inline too — the
  // degenerate case the bit-identity tests pin against).
  std::unique_ptr<util::ThreadPool> workers;
  if (v.engine == PoolEngine::kMegapool && config.megapool.threads != 1) {
    workers = std::make_unique<util::ThreadPool>(config.megapool.threads);
  }

  numerics::Rng master(config.seed);

  // Master stream order is the API contract (documented on PoolEngine):
  // per-machine history splits, pool seed, matchmaker seed, transfer
  // stream, then — only when the scenario asks — server and predictor
  // seeds. Every engine consumes it identically.
  std::vector<dist::DistributionPtr> fitted = engine::fit_pool_models(
      machine_specs, master, config.family, config.train_count,
      workers.get());

  const std::uint64_t pool_seed = master.next_u64();
  const std::uint64_t matchmaker_seed = master.next_u64();
  numerics::Rng transfer_rng = master.split();

  std::unique_ptr<engine::MachinePark> park;
  if (v.engine == PoolEngine::kMegapool) {
    park = std::make_unique<engine::MegaPark>(
        machine_specs, pool_seed, fitted, config.policy, matchmaker_seed,
        config.megapool, workers.get());
  } else {
    park = std::make_unique<engine::LegacyPark>(
        machine_specs, pool_seed, fitted, config.policy, matchmaker_seed);
  }

  std::vector<engine::JobState> jobs(config.job_count);
  for (auto& j : jobs) j.remaining_work = config.work_per_job_s;

  PoolSimResult result;
  result.engine = v.engine;
  double last_finish = 0.0;
  std::optional<predict::FailurePredictor> predictor;
  if (v.fleet.has_value()) {
    // The predictor's seed is drawn strictly AFTER every legacy stream
    // (histories, pool, matchmaker, transfer RNG, server seed): with the
    // predictor unset no draw happens and every stream is untouched, so
    // legacy runs stay bit-identical.
    const std::uint64_t server_seed = master.next_u64();
    if (config.scenario.predictor.has_value()) {
      predictor.emplace(*config.scenario.predictor, master.next_u64());
      park->set_predictor(&*predictor);
    }
    auto outputs = engine::run_contended_engine(
        config, fitted, *park, *v.fleet, server_seed,
        predictor.has_value() ? &*predictor : nullptr, jobs, last_finish);
    result.server_enabled = true;
    result.fleet = std::move(outputs.fleet);
    result.server = result.fleet.total;
    result.timeline = std::move(outputs.timeline);
  } else {
    if (config.scenario.predictor.has_value()) {
      predictor.emplace(*config.scenario.predictor, master.next_u64());
      park->set_predictor(&*predictor);
    }
    engine::UncontendedTimelineLog tl;
    engine::run_uncontended_engine(
        config, fitted, *park, transfer_rng,
        predictor.has_value() ? &*predictor : nullptr, jobs, last_finish,
        config.hooks.snapshot_every_s > 0.0 ? &tl : nullptr);
    if (config.hooks.snapshot_every_s > 0.0) {
      result.timeline = engine::build_uncontended_timeline(
          tl, config.hooks.snapshot_every_s);
    }
  }
  if (predictor.has_value()) {
    result.predictor_enabled = true;
    result.predictor = predictor->stats();
    result.predictor_machines = predictor->machine_stats();
  }

  result.jobs.reserve(jobs.size());
  bool all_finished = true;
  for (auto& j : jobs) {
    all_finished &= j.stats.finished;
    result.jobs.push_back(j.stats);
  }
  result.makespan_s = all_finished ? last_finish : config.horizon_s;
  return result;
}

}  // namespace harvest::condor
