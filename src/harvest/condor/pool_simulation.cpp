#include "harvest/condor/pool_simulation.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "harvest/core/optimizer.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/obs/timer.hpp"

namespace harvest::condor {

std::size_t PoolSimResult::finished_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.finished) ++n;
  }
  return n;
}

double PoolSimResult::mean_completion_s() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.finished) {
      sum += j.completion_s;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double PoolSimResult::total_moved_mb() const {
  double mb = 0.0;
  for (const auto& j : jobs) mb += j.moved_mb;
  return mb;
}

std::size_t PoolSimResult::total_evictions() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.evictions;
  return n;
}

namespace {

struct PlacementOutcome {
  double end_time = 0.0;   ///< when the machine frees (eviction or finish)
  bool job_finished = false;
};

// Simulate one whole placement synchronously: the eviction instant is known
// (spell end), so the recovery/work/checkpoint walk inside it is
// deterministic given the sampled transfer times.
PlacementOutcome run_placement(double start, double eviction_time,
                               double uptime_at_start, double remaining_work,
                               bool has_checkpoint,
                               const dist::DistributionPtr& model,
                               const PoolSimConfig& cfg, numerics::Rng& rng,
                               PoolSimJobStats& stats,
                               double& remaining_work_out,
                               bool& has_checkpoint_out) {
  double now = start;
  double uptime = uptime_at_start;
  double measured_cost =
      cfg.link.expected_transfer_seconds(cfg.checkpoint_size_mb);

  struct Transfer {
    double duration;  ///< elapsed wire time (cut at budget if interrupted)
    double moved_mb;  ///< pro-rated bytes
    bool completed;
  };
  const auto transfer = [&](double budget) -> Transfer {
    const double full =
        cfg.link.sample_transfer_seconds(cfg.checkpoint_size_mb, rng);
    if (full <= budget) return {full, cfg.checkpoint_size_mb, true};
    return {budget,
            full > 0.0 ? cfg.checkpoint_size_mb * budget / full : 0.0,
            false};
  };

  // Recovery of the last checkpoint, if any exists.
  if (has_checkpoint) {
    const auto [dur, moved, ok] = transfer(eviction_time - now);
    now += dur;
    uptime += dur;
    stats.moved_mb += moved;
    if (!ok) {
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    measured_cost = dur;
  }

  for (;;) {
    core::IntervalCosts costs;
    costs.checkpoint = measured_cost;
    costs.recovery = measured_cost;
    const core::CheckpointOptimizer optimizer(
        core::MarkovModel(model, costs), cfg.optimizer);
    const double t_opt = optimizer.optimize(uptime).work_time;
    const double chunk = std::min(t_opt, remaining_work);

    if (now + chunk > eviction_time) {
      // Evicted mid-computation: work since the last checkpoint is lost.
      stats.lost_work_s += eviction_time - now;
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    now += chunk;
    uptime += chunk;

    // Transfer: a periodic checkpoint, or the final result upload.
    const auto [dur, moved, ok] = transfer(eviction_time - now);
    stats.moved_mb += moved;
    now += dur;
    uptime += dur;
    if (!ok) {
      // The chunk was never committed.
      stats.lost_work_s += chunk;
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    stats.useful_work_s += chunk;
    remaining_work -= chunk;
    has_checkpoint = true;
    measured_cost = dur;
    if (remaining_work <= 1e-9) {
      remaining_work_out = 0.0;
      has_checkpoint_out = true;
      return {now, true};
    }
  }
}

}  // namespace

PoolSimResult run_pool_simulation(
    const std::vector<TimelinePool::MachineSpec>& machine_specs,
    const PoolSimConfig& config) {
  if (machine_specs.empty()) {
    throw std::invalid_argument("run_pool_simulation: need machines");
  }
  if (config.job_count == 0 || !(config.work_per_job_s > 0.0) ||
      !(config.negotiation_interval_s > 0.0) || !(config.horizon_s > 0.0)) {
    throw std::invalid_argument("run_pool_simulation: bad config");
  }

  static auto& runs = obs::default_registry().counter("condor.pool_sim.runs");
  static auto& placements_total =
      obs::default_registry().counter("condor.pool_sim.placements");
  static auto& evictions_total =
      obs::default_registry().counter("condor.pool_sim.evictions");
  static auto& finished_total =
      obs::default_registry().counter("condor.pool_sim.jobs_finished");
  static auto& mb_total =
      obs::default_registry().gauge("condor.pool_sim.mb_moved");
  static auto& wall_s =
      obs::default_registry().histogram("condor.pool_sim.wall_s");
  runs.add();
  obs::ScopedTimer run_timer(&wall_s);

  numerics::Rng master(config.seed);

  // Monitor histories → fitted models (what the planner is allowed to see).
  std::vector<dist::DistributionPtr> fitted;
  fitted.reserve(machine_specs.size());
  for (const auto& spec : machine_specs) {
    numerics::Rng hist_rng = master.split();
    std::vector<double> history(config.train_count);
    for (auto& h : history) h = spec.availability_law->sample(hist_rng);
    dist::DistributionPtr model;
    try {
      model = core::Planner::fit_model(history, config.family);
    } catch (const std::exception&) {
      model = spec.availability_law;  // degenerate history
    }
    fitted.push_back(std::move(model));
  }

  TimelinePool pool(machine_specs, master.next_u64());
  Matchmaker matchmaker(pool, fitted, config.policy, master.next_u64());
  numerics::Rng transfer_rng = master.split();

  struct JobState {
    double remaining_work;
    bool has_checkpoint = false;
    PoolSimJobStats stats;
  };
  std::vector<JobState> jobs(config.job_count);
  for (auto& j : jobs) j.remaining_work = config.work_per_job_s;

  // Min-heap of (time, job) negotiation events.
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (std::size_t j = 0; j < jobs.size(); ++j) queue.push({0.0, j});

  std::vector<bool> occupied(machine_specs.size(), false);
  std::vector<double> occupied_until(machine_specs.size(), 0.0);

  PoolSimResult result;
  double last_finish = 0.0;
  while (!queue.empty()) {
    const auto [now, job_id] = queue.top();
    queue.pop();
    if (now >= config.horizon_s) continue;
    JobState& job = jobs[job_id];

    // Free machines whose placements have ended.
    for (std::size_t m = 0; m < occupied.size(); ++m) {
      if (occupied[m] && occupied_until[m] <= now) occupied[m] = false;
    }

    const auto match = matchmaker.place(now, occupied);
    if (!match) {
      // Nothing idle: wait for the next negotiation cycle.
      queue.push({now + config.negotiation_interval_s, job_id});
      continue;
    }
    ++job.stats.placements;
    placements_total.add();
    const double eviction_time = now + match->remaining_s;
    double remaining_after = job.remaining_work;
    bool ckpt_after = job.has_checkpoint;
    const double mb_before = job.stats.moved_mb;
    const std::size_t evictions_before = job.stats.evictions;
    const auto outcome = run_placement(
        now, eviction_time, match->uptime_s, job.remaining_work,
        job.has_checkpoint, fitted[match->machine_index], config,
        transfer_rng, job.stats, remaining_after, ckpt_after);
    job.remaining_work = remaining_after;
    job.has_checkpoint = ckpt_after;
    occupied[match->machine_index] = true;
    occupied_until[match->machine_index] = outcome.end_time;
    evictions_total.add(job.stats.evictions - evictions_before);
    mb_total.add(job.stats.moved_mb - mb_before);
    if (config.tracer != nullptr) {
      config.tracer->record_complete("placement", "condor", now,
                                     outcome.end_time - now, job_id,
                                     job.stats.moved_mb - mb_before);
    }

    if (outcome.job_finished) {
      job.stats.finished = true;
      job.stats.completion_s = outcome.end_time;
      last_finish = std::max(last_finish, outcome.end_time);
      finished_total.add();
      if (config.tracer != nullptr) {
        config.tracer->record_instant("job.finished", "condor",
                                      outcome.end_time, job_id,
                                      job.stats.useful_work_s);
      }
    } else {
      // Re-queue at the next negotiation after the eviction.
      queue.push(
          {outcome.end_time + config.negotiation_interval_s, job_id});
    }
  }

  result.jobs.reserve(jobs.size());
  bool all_finished = true;
  for (auto& j : jobs) {
    all_finished &= j.stats.finished;
    result.jobs.push_back(j.stats);
  }
  result.makespan_s = all_finished ? last_finish : config.horizon_s;
  return result;
}

}  // namespace harvest::condor
