// Whole-pool emulation with a job queue: the "virtual cluster" experience.
// N batch jobs, each needing a fixed amount of computation, are submitted
// to a pool of volatile desktop machines. A periodic negotiation cycle
// (like Condor's) matches queued jobs to idle machines under a chosen
// matchmaking policy; placed jobs run the recovery → work → checkpoint
// cycle with per-transfer network costs until the owner reclaims the
// machine, then requeue. The headline metric is what the user feels:
// completion time (and the network what the site feels).
//
// This composes every layer of the library: TimelinePool (machine
// volatility) + Matchmaker (policy) + Planner (model fit + T_opt) +
// BandwidthModel (transfer costs) + the paper's interval cycle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harvest/condor/matchmaker.hpp"
#include "harvest/core/planner.hpp"
#include "harvest/net/bandwidth_model.hpp"
#include "harvest/obs/span.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/predict/failure_predictor.hpp"
#include "harvest/server/fleet.hpp"

namespace harvest::condor {

struct PoolSimConfig {
  std::size_t job_count = 16;
  /// Computation each job must accumulate (committed work) to finish.
  double work_per_job_s = 8.0 * 3600.0;
  double checkpoint_size_mb = 500.0;
  net::BandwidthModel link = net::BandwidthModel::campus();
  core::ModelFamily family = core::ModelFamily::kWeibull;
  MatchPolicy policy = MatchPolicy::kRandom;
  /// Matchmaker cadence (Condor negotiates periodically, not instantly).
  double negotiation_interval_s = 300.0;
  /// Observations per machine used to fit availability models.
  std::size_t train_count = 25;
  /// Hard stop; jobs unfinished by then report no completion time.
  double horizon_s = 14.0 * 24.0 * 3600.0;
  core::OptimizerOptions optimizer;
  std::uint64_t seed = 1;
  /// Optional structured timeline (category "condor"): one complete event
  /// per placement (id = job, value = MB moved during it, tid = machine
  /// index → one Chrome-trace track per machine) plus instant markers for
  /// job completions. Times are simulated pool seconds, so the Chrome-trace
  /// view of this tracer is the cluster's gantt chart.
  obs::EventTracer* tracer = nullptr;
  /// Optional causal span sink (obs/span.hpp): both engines open one root
  /// span per job and report every transfer's full lifecycle — plus
  /// client-side backoff and rejection spans in contended mode — so each
  /// transfer's wait partitions exactly into stagger / admission-queue /
  /// scheduler-queue phases and its service splits into solo + dilation.
  /// Recording is pure bookkeeping (no RNG, no decisions): a run produces
  /// bit-identical results with the store attached or not. Runtime state
  /// like `tracer`; in contended mode it is attached to every shard through
  /// server::FleetConfig::materialize().
  obs::SpanStore* spans = nullptr;
  /// Opt-in contended checkpoint server: shorthand for a 1-shard `fleet`
  /// (below) and kept for callers that predate sharding. When set, every
  /// job's recovery and checkpoint transfer contends for one
  /// server::CheckpointServer — transfers queue for slots, share the pipe
  /// TCP-fairly, and can be staggered or rejected — instead of each
  /// sampling an independent BandwidthModel duration. The config's `seed`
  /// and `tracer` fields are ignored: the engine derives per-shard runtime
  /// state through server::FleetConfig::materialize() (seed from `seed`
  /// above, tracer from `tracer` above). Setting both this and `fleet`
  /// throws.
  std::optional<server::ServerConfig> server;
  /// Full contended mode: K sharded checkpoint servers behind a routing
  /// policy (server::ServerFleet). A 1-shard fleet is bit-identical to
  /// `server`. Same materialize() contract for seed/tracer as above.
  std::optional<server::FleetConfig> fleet;
  /// Opt-in fault-prediction scenario (harvest/predict): a seeded oracle
  /// with precision/recall/window over each placement's hidden reclamation
  /// instant. Alerts drive the window-aware proactive-checkpoint rule
  /// (proactive transfers are their own TransferKind, so they contend and
  /// attribute like any other class) and stretch the reactive period by the
  /// Aupy et al. 1/sqrt(1 - r̃) factor. The predictor's RNG stream is
  /// derived from `seed` strictly after every existing stream, so leaving
  /// this unset — or setting recall = 0, which can never emit an alert —
  /// reproduces the legacy engines bit-identically.
  std::optional<predict::PredictorConfig> predictor;
  /// Per-interval telemetry cadence in simulated seconds; 0 (default)
  /// disables the timeline. When set, PoolSimResult::timeline carries one
  /// frame per interval whose per-shard megabytes exactly partition the
  /// run's total network traffic (every completed or interrupted transfer
  /// lands in exactly one frame). The cadence does not perturb the
  /// simulation: a run produces bit-identical results with the timeline on
  /// or off.
  double snapshot_every_s = 0.0;
};

/// One fleet shard's slice of a timeline frame. Queue depth / active /
/// pending are sampled at the frame cut (as of the shard's clock at the
/// last event processed before the boundary); the rest are per-interval
/// deltas.
struct PoolShardFrame {
  std::size_t queue_depth = 0;   ///< waiting transfers at the cut
  std::size_t active = 0;        ///< in-service transfers at the cut
  double pending_mb = 0.0;       ///< queued + in-service MB at the cut
  double moved_mb = 0.0;         ///< MB completed or interrupted this interval
  double wait_p50_s = 0.0;       ///< over transfers finishing this interval
  double wait_p99_s = 0.0;
  /// Approximate wire occupancy: completed MB this interval over link
  /// capacity x interval length, clamped to [0, 1]. A transfer spanning a
  /// boundary charges the interval its bytes are accounted in.
  double utilization = 0.0;
  std::uint64_t storms_deferred = 0;  ///< staggerer deferrals this interval
};

/// One per-interval telemetry sample of the whole pool. Frames tile
/// [0, end of run): frame i covers simulated time [start_s, t_s), the last
/// frame may be shorter than the cadence, and megabytes are partitioned
/// exactly — summing interval_mb (or every shard's moved_mb) over all
/// frames reproduces the run's total network MB.
struct PoolTimelineFrame {
  double start_s = 0.0;
  double t_s = 0.0;          ///< frame end (the sample instant)
  double interval_mb = 0.0;  ///< Σ shard moved_mb; all traffic uncontended
  std::size_t jobs_finished = 0;  ///< completions inside this interval
  std::vector<PoolShardFrame> shards;  ///< empty in uncontended mode
};

/// CSV export of a timeline: one row per (frame, shard) — or one row per
/// frame with the shard columns empty in uncontended mode — under the
/// stable header
/// `frame,start_s,end_s,interval_mb,jobs_finished,shard,queue_depth,
/// active,pending_mb,moved_mb,wait_p50_s,wait_p99_s,utilization,
/// storms_deferred`.
[[nodiscard]] std::string timeline_csv(
    const std::vector<PoolTimelineFrame>& timeline);
void write_timeline_csv(const std::string& path,
                        const std::vector<PoolTimelineFrame>& timeline);

struct PoolSimJobStats {
  bool finished = false;
  double completion_s = 0.0;   ///< submission→finish (valid when finished)
  double useful_work_s = 0.0;
  double lost_work_s = 0.0;
  double moved_mb = 0.0;
  std::size_t placements = 0;
  std::size_t evictions = 0;
  /// Server mode only: queueing + stagger delay this job's transfers ate.
  double server_wait_s = 0.0;
  /// Server mode only: submissions the admission controller bounced.
  std::size_t rejected_submits = 0;
  /// Predictor mode only: alert-driven checkpoints that committed.
  std::size_t proactive_checkpoints = 0;
};

struct PoolSimResult {
  std::vector<PoolSimJobStats> jobs;
  double makespan_s = 0.0;  ///< last finisher (or horizon if any unfinished)
  /// Filled when PoolSimConfig::server or ::fleet was set.
  bool server_enabled = false;
  /// Fleet-wide aggregate (equals fleet.total; kept as the stable field
  /// callers predating sharding read).
  server::ServerStats server;
  /// Aggregate plus per-shard breakdown and imbalance.
  server::FleetStats fleet;
  /// Per-interval telemetry; empty unless PoolSimConfig::snapshot_every_s
  /// was set. See PoolTimelineFrame for the partition guarantee.
  std::vector<PoolTimelineFrame> timeline;
  /// Filled when PoolSimConfig::predictor was set: the oracle's pool-wide
  /// accounting (events, true/false alerts, misses, observed p̂/r̂).
  bool predictor_enabled = false;
  predict::PredictorStats predictor;

  [[nodiscard]] std::size_t finished_count() const;
  [[nodiscard]] double mean_completion_s() const;  ///< finished jobs only
  [[nodiscard]] double total_moved_mb() const;
  [[nodiscard]] std::size_t total_evictions() const;
  [[nodiscard]] double total_useful_work_s() const;
  [[nodiscard]] double total_lost_work_s() const;
  [[nodiscard]] std::size_t total_proactive_checkpoints() const;
};

/// Run the pool emulation. `machine_specs` define the park; models are
/// fitted per machine from monitor histories sampled inside the function
/// (seeded by config.seed).
[[nodiscard]] PoolSimResult run_pool_simulation(
    const std::vector<TimelinePool::MachineSpec>& machine_specs,
    const PoolSimConfig& config);

}  // namespace harvest::condor
