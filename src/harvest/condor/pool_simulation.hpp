// Whole-pool emulation with a job queue: the "virtual cluster" experience.
// N batch jobs, each needing a fixed amount of computation, are submitted
// to a pool of volatile desktop machines. A periodic negotiation cycle
// (like Condor's) matches queued jobs to idle machines under a chosen
// matchmaking policy; placed jobs run the recovery → work → checkpoint
// cycle with per-transfer network costs until the owner reclaims the
// machine, then requeue. The headline metric is what the user feels:
// completion time (and the network what the site feels).
//
// This composes every layer of the library: a machine park (TimelinePool or
// the SoA megapool table) + Matchmaker (policy) + Planner (model fit +
// T_opt) + BandwidthModel (transfer costs) + the paper's interval cycle.
//
// Selection happens through three orthogonal knobs:
//   engine   — which discrete-event core runs the pool (see PoolEngine),
//   scenario — what world the jobs run in (fleet contention, fault
//              prediction),
//   hooks    — which observability sinks ride along (obs::RuntimeHooks;
//              never perturb results).
// validate() resolves them (and the deprecated `server` shorthand) into the
// effective engine + canonical fleet, mirroring FleetConfig::validate().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harvest/condor/matchmaker.hpp"
#include "harvest/core/planner.hpp"
#include "harvest/net/bandwidth_model.hpp"
#include "harvest/obs/runtime_hooks.hpp"
#include "harvest/predict/failure_predictor.hpp"
#include "harvest/server/fleet.hpp"

namespace harvest::server {
struct CliOptions;
}

namespace harvest::condor {

/// Which discrete-event core runs the pool.
enum class PoolEngine : std::uint8_t {
  /// Resolve from the scenario: contended when a fleet (or the deprecated
  /// `server` shorthand) is configured, uncontended otherwise — exactly the
  /// pre-selector behavior.
  kAuto,
  /// The original per-placement synchronous walk; every transfer samples an
  /// independent BandwidthModel duration. Requires no fleet.
  kUncontended,
  /// Global discrete-event walk where every transfer contends for the
  /// server fleet. Requires a fleet.
  kContended,
  /// Flat SoA machine table + calendar event queues, sharded across a
  /// thread pool with a deterministic merge. Runs whichever spine the
  /// scenario needs (contended iff a fleet is configured) and is
  /// bit-identical to it at equal seeds, at any shard/thread count.
  kMegapool,
};

[[nodiscard]] std::string to_string(PoolEngine engine);
/// Inverse of to_string; throws std::invalid_argument on an unknown name.
[[nodiscard]] PoolEngine pool_engine_from_string(const std::string& name);

/// What world the jobs run in: the scenario axes that change results (as
/// opposed to hooks, which never do).
struct ScenarioConfig {
  /// Contended checkpoint traffic: K sharded checkpoint servers behind a
  /// routing policy (server::ServerFleet). When set, every recovery and
  /// checkpoint transfer queues for slots and shares the pipe TCP-fairly
  /// instead of sampling an independent BandwidthModel duration. Per-shard
  /// runtime state derives through server::FleetConfig::materialize() (seed
  /// from the run's master stream, tracer/spans from `hooks`).
  std::optional<server::FleetConfig> fleet;
  /// Fault-prediction scenario (harvest/predict): a seeded oracle with
  /// precision/recall/window over each placement's hidden reclamation
  /// instant. Alerts drive the window-aware proactive-checkpoint rule and
  /// stretch the reactive period by the Aupy et al. 1/sqrt(1 - r̃) factor;
  /// when matchmaking is kModelRanked the matchmaker also demotes machines
  /// the oracle's alert board predicts will be reclaimed soon. The
  /// predictor's RNG stream is derived strictly after every legacy stream,
  /// so leaving this unset — or setting recall = 0, which can never emit an
  /// alert — reproduces the predictor-free engines bit-identically.
  std::optional<predict::PredictorConfig> predictor;
};

/// Tuning for PoolEngine::kMegapool. Neither knob may change results — the
/// sharded merge is deterministic — only wall-clock.
struct MegapoolOptions {
  /// Machine-table shards; 0 → auto (grows with the machine count).
  std::size_t shards = 0;
  /// Worker threads for the shard fan-out; 0 → hardware concurrency,
  /// 1 → run everything inline on the caller.
  std::size_t threads = 0;
};

/// What PoolSimConfig::validate() resolves: the engine that will actually
/// run, the canonical fleet (the deprecated `server` shorthand folded in),
/// and non-fatal warnings, mirroring server::FleetConfig::validate().
struct PoolSimValidation {
  PoolEngine engine = PoolEngine::kUncontended;  ///< never kAuto
  /// Canonical fleet configuration (scenario.fleet, or the 1-shard fleet
  /// the deprecated `server` desugars to); nullopt for uncontended runs.
  std::optional<server::FleetConfig> fleet;
  std::vector<std::string> warnings;
};

struct PoolSimConfig {
  std::size_t job_count = 16;
  /// Computation each job must accumulate (committed work) to finish.
  double work_per_job_s = 8.0 * 3600.0;
  double checkpoint_size_mb = 500.0;
  net::BandwidthModel link = net::BandwidthModel::campus();
  core::ModelFamily family = core::ModelFamily::kWeibull;
  MatchPolicy policy = MatchPolicy::kRandom;
  /// Matchmaker cadence (Condor negotiates periodically, not instantly).
  double negotiation_interval_s = 300.0;
  /// Observations per machine used to fit availability models.
  std::size_t train_count = 25;
  /// Hard stop; jobs unfinished by then report no completion time.
  double horizon_s = 14.0 * 24.0 * 3600.0;
  core::OptimizerOptions optimizer;
  std::uint64_t seed = 1;

  /// Which discrete-event core runs the pool; see PoolEngine. kAuto keeps
  /// the historical scenario-driven selection.
  PoolEngine engine = PoolEngine::kAuto;
  /// The scenario axes (fleet contention, fault prediction).
  ScenarioConfig scenario;
  /// Tuning for the megapool engine; ignored (with a validate() warning)
  /// under the other engines.
  MegapoolOptions megapool;
  /// Observability attachments (tracer, spans, timeline cadence). Hooks are
  /// pure bookkeeping: results are bit-identical with hooks attached or
  /// not. The tracer records one complete event per placement (id = job,
  /// value = MB moved, tid = machine index) plus instant markers for job
  /// completions; the span store gets one root span per job with every
  /// transfer's full lifecycle parented under it; snapshot_every_s > 0
  /// fills PoolSimResult::timeline at that cadence.
  obs::RuntimeHooks hooks;

  /// DEPRECATED shorthand for `scenario.fleet` with one shard, kept for
  /// callers that predate sharding. validate() canonicalizes it — that is
  /// the single place the desugaring happens — and a 1-shard fleet is
  /// bit-identical to the old single-server engine. Setting both this and
  /// scenario.fleet throws.
  std::optional<server::ServerConfig> server;

  /// Resolve engine/scenario into what will actually run. Throws
  /// std::invalid_argument on contradictions (both `server` and
  /// `scenario.fleet` set; kUncontended with a fleet; kContended without
  /// one; non-positive counts/durations; bad predictor domain) and returns
  /// the effective engine, the canonical fleet, and warnings (deprecated
  /// `server` use, ignored megapool tuning, fleet config warnings).
  [[nodiscard]] PoolSimValidation validate() const;
};

/// One fleet shard's slice of a timeline frame. Queue depth / active /
/// pending are sampled at the frame cut (as of the shard's clock at the
/// last event processed before the boundary); the rest are per-interval
/// deltas.
struct PoolShardFrame {
  std::size_t queue_depth = 0;   ///< waiting transfers at the cut
  std::size_t active = 0;        ///< in-service transfers at the cut
  double pending_mb = 0.0;       ///< queued + in-service MB at the cut
  double moved_mb = 0.0;         ///< MB completed or interrupted this interval
  double wait_p50_s = 0.0;       ///< over transfers finishing this interval
  double wait_p99_s = 0.0;
  /// Approximate wire occupancy: completed MB this interval over link
  /// capacity x interval length, clamped to [0, 1]. A transfer spanning a
  /// boundary charges the interval its bytes are accounted in.
  double utilization = 0.0;
  std::uint64_t storms_deferred = 0;  ///< staggerer deferrals this interval
};

/// One per-interval telemetry sample of the whole pool. Frames tile
/// [0, end of run): frame i covers simulated time [start_s, t_s), the last
/// frame may be shorter than the cadence, and megabytes are partitioned
/// exactly — summing interval_mb (or every shard's moved_mb) over all
/// frames reproduces the run's total network MB.
struct PoolTimelineFrame {
  double start_s = 0.0;
  double t_s = 0.0;          ///< frame end (the sample instant)
  double interval_mb = 0.0;  ///< Σ shard moved_mb; all traffic uncontended
  std::size_t jobs_finished = 0;  ///< completions inside this interval
  std::vector<PoolShardFrame> shards;  ///< empty in uncontended mode
};

/// CSV export of a timeline: one row per (frame, shard) — or one row per
/// frame with the shard columns empty in uncontended mode — under the
/// stable header
/// `frame,start_s,end_s,interval_mb,jobs_finished,shard,queue_depth,
/// active,pending_mb,moved_mb,wait_p50_s,wait_p99_s,utilization,
/// storms_deferred`.
[[nodiscard]] std::string timeline_csv(
    const std::vector<PoolTimelineFrame>& timeline);
void write_timeline_csv(const std::string& path,
                        const std::vector<PoolTimelineFrame>& timeline);

struct PoolSimJobStats {
  bool finished = false;
  double completion_s = 0.0;   ///< submission→finish (valid when finished)
  double useful_work_s = 0.0;
  double lost_work_s = 0.0;
  double moved_mb = 0.0;
  std::size_t placements = 0;
  std::size_t evictions = 0;
  /// Server mode only: queueing + stagger delay this job's transfers ate.
  double server_wait_s = 0.0;
  /// Server mode only: submissions the admission controller bounced.
  std::size_t rejected_submits = 0;
  /// Predictor mode only: alert-driven checkpoints that committed.
  std::size_t proactive_checkpoints = 0;
};

struct PoolSimResult {
  std::vector<PoolSimJobStats> jobs;
  double makespan_s = 0.0;  ///< last finisher (or horizon if any unfinished)
  /// The engine that actually ran (validate()'s resolution of kAuto).
  PoolEngine engine = PoolEngine::kUncontended;
  /// Filled when the run was contended (a fleet — or the deprecated
  /// `server` shorthand — was configured).
  bool server_enabled = false;
  /// Fleet-wide aggregate (equals fleet.total; kept as the stable field
  /// callers predating sharding read).
  server::ServerStats server;
  /// Aggregate plus per-shard breakdown and imbalance.
  server::FleetStats fleet;
  /// Per-interval telemetry; empty unless hooks.snapshot_every_s was set.
  /// See PoolTimelineFrame for the partition guarantee.
  std::vector<PoolTimelineFrame> timeline;
  /// Filled when scenario.predictor was set: the oracle's pool-wide
  /// accounting (events, true/false alerts, misses, observed p̂/r̂).
  bool predictor_enabled = false;
  predict::PredictorStats predictor;
  /// Per-machine slice of `predictor`, indexed by machine (sized to the
  /// largest index that hosted an attributed spell). Summing every entry
  /// reproduces the machine-attributed share of `predictor`; the engines
  /// attribute every spell, so the sum equals the aggregate. Empty when the
  /// predictor was off.
  std::vector<predict::PredictorStats> predictor_machines;

  [[nodiscard]] std::size_t finished_count() const;
  [[nodiscard]] double mean_completion_s() const;  ///< finished jobs only
  [[nodiscard]] double total_moved_mb() const;
  [[nodiscard]] std::size_t total_evictions() const;
  [[nodiscard]] double total_useful_work_s() const;
  [[nodiscard]] double total_lost_work_s() const;
  [[nodiscard]] std::size_t total_proactive_checkpoints() const;
};

/// The one place the shared CLI flag surface (server::CliOptions) maps onto
/// a pool config, so front ends cannot drift: --engine/--megapool-* apply
/// to the engine knobs, and any --server-*/--fleet-* flag installs
/// scenario.fleet via opts.fleet_config(). Fields without a flag given are
/// left untouched.
void apply_cli_options(PoolSimConfig& config,
                       const server::CliOptions& opts);

/// Run the pool emulation. `machine_specs` define the park; models are
/// fitted per machine from monitor histories sampled inside the function
/// (seeded by config.seed).
[[nodiscard]] PoolSimResult run_pool_simulation(
    const std::vector<TimelinePool::MachineSpec>& machine_specs,
    const PoolSimConfig& config);

}  // namespace harvest::condor
