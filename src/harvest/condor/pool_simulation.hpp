// Whole-pool emulation with a job queue: the "virtual cluster" experience.
// N batch jobs, each needing a fixed amount of computation, are submitted
// to a pool of volatile desktop machines. A periodic negotiation cycle
// (like Condor's) matches queued jobs to idle machines under a chosen
// matchmaking policy; placed jobs run the recovery → work → checkpoint
// cycle with per-transfer network costs until the owner reclaims the
// machine, then requeue. The headline metric is what the user feels:
// completion time (and the network what the site feels).
//
// This composes every layer of the library: TimelinePool (machine
// volatility) + Matchmaker (policy) + Planner (model fit + T_opt) +
// BandwidthModel (transfer costs) + the paper's interval cycle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "harvest/condor/matchmaker.hpp"
#include "harvest/core/planner.hpp"
#include "harvest/net/bandwidth_model.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/server/fleet.hpp"

namespace harvest::condor {

struct PoolSimConfig {
  std::size_t job_count = 16;
  /// Computation each job must accumulate (committed work) to finish.
  double work_per_job_s = 8.0 * 3600.0;
  double checkpoint_size_mb = 500.0;
  net::BandwidthModel link = net::BandwidthModel::campus();
  core::ModelFamily family = core::ModelFamily::kWeibull;
  MatchPolicy policy = MatchPolicy::kRandom;
  /// Matchmaker cadence (Condor negotiates periodically, not instantly).
  double negotiation_interval_s = 300.0;
  /// Observations per machine used to fit availability models.
  std::size_t train_count = 25;
  /// Hard stop; jobs unfinished by then report no completion time.
  double horizon_s = 14.0 * 24.0 * 3600.0;
  core::OptimizerOptions optimizer;
  std::uint64_t seed = 1;
  /// Optional structured timeline (category "condor"): one complete event
  /// per placement (id = job, value = MB moved during it, tid = machine
  /// index → one Chrome-trace track per machine) plus instant markers for
  /// job completions. Times are simulated pool seconds, so the Chrome-trace
  /// view of this tracer is the cluster's gantt chart.
  obs::EventTracer* tracer = nullptr;
  /// Opt-in contended checkpoint server: shorthand for a 1-shard `fleet`
  /// (below) and kept for callers that predate sharding. When set, every
  /// job's recovery and checkpoint transfer contends for one
  /// server::CheckpointServer — transfers queue for slots, share the pipe
  /// TCP-fairly, and can be staggered or rejected — instead of each
  /// sampling an independent BandwidthModel duration. The config's `seed`
  /// and `tracer` fields are ignored: the engine derives per-shard runtime
  /// state through server::FleetConfig::materialize() (seed from `seed`
  /// above, tracer from `tracer` above). Setting both this and `fleet`
  /// throws.
  std::optional<server::ServerConfig> server;
  /// Full contended mode: K sharded checkpoint servers behind a routing
  /// policy (server::ServerFleet). A 1-shard fleet is bit-identical to
  /// `server`. Same materialize() contract for seed/tracer as above.
  std::optional<server::FleetConfig> fleet;
};

struct PoolSimJobStats {
  bool finished = false;
  double completion_s = 0.0;   ///< submission→finish (valid when finished)
  double useful_work_s = 0.0;
  double lost_work_s = 0.0;
  double moved_mb = 0.0;
  std::size_t placements = 0;
  std::size_t evictions = 0;
  /// Server mode only: queueing + stagger delay this job's transfers ate.
  double server_wait_s = 0.0;
  /// Server mode only: submissions the admission controller bounced.
  std::size_t rejected_submits = 0;
};

struct PoolSimResult {
  std::vector<PoolSimJobStats> jobs;
  double makespan_s = 0.0;  ///< last finisher (or horizon if any unfinished)
  /// Filled when PoolSimConfig::server or ::fleet was set.
  bool server_enabled = false;
  /// Fleet-wide aggregate (equals fleet.total; kept as the stable field
  /// callers predating sharding read).
  server::ServerStats server;
  /// Aggregate plus per-shard breakdown and imbalance.
  server::FleetStats fleet;

  [[nodiscard]] std::size_t finished_count() const;
  [[nodiscard]] double mean_completion_s() const;  ///< finished jobs only
  [[nodiscard]] double total_moved_mb() const;
  [[nodiscard]] std::size_t total_evictions() const;
  [[nodiscard]] double total_useful_work_s() const;
  [[nodiscard]] double total_lost_work_s() const;
};

/// Run the pool emulation. `machine_specs` define the park; models are
/// fitted per machine from monitor histories sampled inside the function
/// (seeded by config.seed).
[[nodiscard]] PoolSimResult run_pool_simulation(
    const std::vector<TimelinePool::MachineSpec>& machine_specs,
    const PoolSimConfig& config);

}  // namespace harvest::condor
