// Emulated cycle-harvesting pool: the stand-in for the live Condor system
// at the University of Wisconsin (see DESIGN.md §2). Machines alternate
// between owner-busy gaps and guest-available periods; available periods are
// drawn from each machine's ground-truth availability law, ending with an
// owner reclamation (eviction).
//
// The pool supports the paper's two uses of Condor:
//  * the occupancy monitor (§4): sensor jobs record availability durations,
//    producing the traces the model-fitting layer consumes;
//  * the matchmaker (§5.2): the live experiment asks for a placement and
//    receives (machine, availability period) pairs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harvest/dist/distribution.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/trace/trace.hpp"

namespace harvest::condor {

struct Machine {
  std::string id;
  dist::DistributionPtr availability_law;
};

/// One job placement handed out by the matchmaker.
struct Placement {
  std::size_t machine_index = 0;
  /// How long the machine will stay available this time. The guest job
  /// cannot observe this — it only finds out when the eviction hits.
  double available_for_s = 0.0;
};

class Pool {
 public:
  /// `machines` must be non-empty; `seed` makes all pool randomness
  /// (periods, matchmaking) reproducible.
  Pool(std::vector<Machine> machines, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return machines_.size(); }
  [[nodiscard]] const Machine& machine(std::size_t i) const;

  /// Run the §4 occupancy monitor: record `observations` availability
  /// durations (with timestamps) from every machine.
  [[nodiscard]] std::vector<trace::AvailabilityTrace> collect_traces(
      std::size_t observations);

  /// Matchmaker: pick an idle machine uniformly and start an availability
  /// period on it.
  [[nodiscard]] Placement next_placement();

 private:
  std::vector<Machine> machines_;
  numerics::Rng rng_;
};

}  // namespace harvest::condor
