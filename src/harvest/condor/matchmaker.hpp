// Age-aware matchmaking — an extension the paper's machinery makes
// possible. With heavy-tailed availability, a machine that has ALREADY been
// idle-available for a long time is expected to remain available longer
// (decreasing hazard; §3.3's future-lifetime distribution). A matchmaker
// that can see each idle machine's current uptime can therefore place jobs
// on the machines with the largest expected residual availability, instead
// of picking blindly.
//
// TimelinePool maintains a continuous busy/available timeline per machine;
// Matchmaker ranks the currently available machines under a policy:
//   kRandom          — the baseline (what Pool::next_placement models),
//   kLongestUptime   — proxy: oldest currently-available machine,
//   kModelRanked     — full model: max E[residual life | uptime] using each
//                      machine's fitted availability model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harvest/dist/distribution.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::predict {
class FailurePredictor;
}

namespace harvest::condor {

enum class MatchPolicy { kRandom, kLongestUptime, kModelRanked };

[[nodiscard]] std::string to_string(MatchPolicy policy);

/// One machine's continuous timeline of alternating available/busy spells.
class TimelinePool {
 public:
  struct MachineSpec {
    std::string id;
    dist::DistributionPtr availability_law;  ///< available-spell durations
    /// Mean of the (exponential) owner-busy spells between availabilities.
    double busy_mean_s = 0.0;  ///< 0 → half the availability mean
  };

  TimelinePool(std::vector<MachineSpec> specs, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return machines_.size(); }

  /// Currently available machine indices with their uptimes at time `now`.
  struct Candidate {
    std::size_t machine_index = 0;
    double uptime_s = 0.0;
  };
  [[nodiscard]] std::vector<Candidate> available_at(double now);

  /// Remaining availability of machine `i` at `now` (it must be available).
  [[nodiscard]] double remaining_availability(std::size_t i, double now);

  /// Machine `i`'s current spell bounds (start, end) after advancing to
  /// `now` — the exact stored doubles, so spell-keyed consumers (the fault
  /// predictor's reclaim hints) see the same values from every engine.
  [[nodiscard]] std::pair<double, double> spell(std::size_t i, double now);

  [[nodiscard]] const MachineSpec& spec(std::size_t i) const;

 private:
  struct Timeline {
    MachineSpec spec;
    numerics::Rng rng{0};
    double spell_start = 0.0;
    double spell_end = 0.0;
    bool available = false;
    void advance_to(double now);
  };
  std::vector<Timeline> machines_;
};

class Matchmaker {
 public:
  /// `models[i]` is the fitted availability model for machine i, used by
  /// kModelRanked (pass the fitted models, not the ground truths — the
  /// matchmaker only knows what the monitor measured). May be empty for the
  /// other policies.
  Matchmaker(TimelinePool& pool, std::vector<dist::DistributionPtr> models,
             MatchPolicy policy, std::uint64_t seed);

  struct Match {
    std::size_t machine_index = 0;
    double uptime_s = 0.0;      ///< machine's uptime at placement
    double remaining_s = 0.0;   ///< availability the job will actually get
  };

  /// Pick a machine at time `now`; nullopt when nothing is available.
  /// `occupied` (optional, one flag per machine) excludes machines already
  /// running a guest job.
  [[nodiscard]] std::optional<Match> place(
      double now, const std::vector<bool>& occupied = {});

  /// Attach the fault-prediction oracle. kModelRanked then scores each
  /// candidate as min(E[residual | uptime], predicted time-to-reclaim) —
  /// machines whose reclamation the oracle foresees are demoted to the
  /// residual it predicts. reclaim_hint is deterministic per spell and
  /// consumes no RNG, and with recall 0 it never fires, so attaching a
  /// zero-recall predictor reproduces the unattached ranking bit-for-bit.
  void set_predictor(const predict::FailurePredictor* predictor);

  [[nodiscard]] MatchPolicy policy() const { return policy_; }

 private:
  TimelinePool& pool_;
  std::vector<dist::DistributionPtr> models_;
  MatchPolicy policy_;
  numerics::Rng rng_;
  const predict::FailurePredictor* predictor_ = nullptr;
};

}  // namespace harvest::condor
