#include "harvest/condor/pool_engine.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "harvest/core/optimizer.hpp"
#include "harvest/obs/prof.hpp"
#include "harvest/obs/span.hpp"
#include "harvest/predict/proactive_policy.hpp"
#include "harvest/sim/calendar_queue.hpp"

namespace harvest::condor::engine {

PoolMetrics& pool_metrics() {
  auto& reg = obs::default_registry();
  static PoolMetrics m{
      reg.counter("condor.pool_sim.runs"),
      reg.counter("condor.pool_sim.placements"),
      reg.counter("condor.pool_sim.evictions"),
      reg.counter("condor.pool_sim.jobs_finished"),
      reg.gauge("condor.pool_sim.mb_moved"),
      reg.histogram("condor.pool_sim.wall_s"),
  };
  return m;
}

LegacyPark::LegacyPark(const std::vector<TimelinePool::MachineSpec>& specs,
                       std::uint64_t pool_seed,
                       std::vector<dist::DistributionPtr> models,
                       MatchPolicy policy, std::uint64_t matchmaker_seed)
    : pool_(specs, pool_seed),
      matchmaker_(pool_, std::move(models), policy, matchmaker_seed),
      occupied_(specs.size(), false),
      occupied_until_(specs.size(), 0.0) {}

std::optional<Matchmaker::Match> LegacyPark::place(double now) {
  // Free machines whose placements have ended.
  for (std::size_t m = 0; m < occupied_.size(); ++m) {
    if (occupied_[m] && occupied_until_[m] <= now) occupied_[m] = false;
  }
  return matchmaker_.place(now, occupied_);
}

void LegacyPark::occupy(std::size_t machine, double until) {
  occupied_[machine] = true;
  occupied_until_[machine] = until;
}

void LegacyPark::release_at(std::size_t machine, double t) {
  occupied_until_[machine] = t;
}

void LegacyPark::set_predictor(const predict::FailurePredictor* predictor) {
  matchmaker_.set_predictor(predictor);
}

// Simulate one whole placement synchronously: the eviction instant is known
// (spell end), so the recovery/work/checkpoint walk inside it is
// deterministic given the sampled transfer times.
PlacementOutcome run_placement(std::size_t job_id, std::size_t machine_index,
                               double start, double eviction_time,
                               double uptime_at_start, double remaining_work,
                               bool has_checkpoint,
                               const dist::DistributionPtr& model,
                               const PoolSimConfig& cfg, numerics::Rng& rng,
                               predict::FailurePredictor* predictor,
                               PoolSimJobStats& stats,
                               double& remaining_work_out,
                               bool& has_checkpoint_out) {
  PROF_PHASE("uncontended.placement");
  double now = start;
  double uptime = uptime_at_start;
  double measured_cost =
      cfg.link.expected_transfer_seconds(cfg.checkpoint_size_mb);

  // Fault-prediction scenario: the oracle sees this placement's hidden
  // reclamation instant (the spell end) and emits its alerts up front; the
  // walk below consults them through the window-aware proactive rule. The
  // policy only ever sees alert times — never Alert::truth.
  std::vector<predict::Alert> alerts;
  std::optional<predict::ProactivePolicy> policy;
  if (predictor != nullptr && eviction_time > now) {
    alerts = predictor->alerts_for_spell(now, eviction_time, machine_index);
    policy.emplace(predictor->config());
  }
  std::size_t alert_idx = 0;

  struct Transfer {
    double duration;  ///< elapsed wire time (cut at budget if interrupted)
    double moved_mb;  ///< pro-rated bytes
    bool completed;
  };
  const auto transfer = [&](double budget) -> Transfer {
    const double full =
        cfg.link.sample_transfer_seconds(cfg.checkpoint_size_mb, rng);
    if (full <= budget) return {full, cfg.checkpoint_size_mb, true};
    return {budget,
            full > 0.0 ? cfg.checkpoint_size_mb * budget / full : 0.0,
            false};
  };
  // Uncontended transfers start the instant they are requested and own the
  // sampled link alone, so the span degenerates to a pure service phase:
  // zero wait, solo == duration, dilation == 0. Keeping the record anyway
  // means job span trees (and the partition invariant) hold in both
  // engines, and a contended-vs-uncontended attribution diff reads off
  // exactly what contention cost.
  const auto record_span = [&](double t0, const Transfer& tr,
                               std::uint8_t kind) {
    if (cfg.hooks.spans == nullptr) return;
    obs::TransferTimings t;
    t.job_id = job_id;
    t.kind = kind;
    t.megabytes = cfg.checkpoint_size_mb;
    t.moved_mb = tr.moved_mb;
    t.arrival_s = t0;
    t.eligible_s = t0;
    t.start_s = t0;
    t.end_s = t0 + tr.duration;
    t.solo_service_s = tr.duration;
    t.entered_service = true;
    t.completed = tr.completed;
    cfg.hooks.spans->record_transfer(t);
  };

  // Recovery of the last checkpoint, if any exists.
  if (has_checkpoint) {
    const auto [dur, moved, ok] = transfer(eviction_time - now);
    record_span(now, {dur, moved, ok}, /*kind=*/1);
    now += dur;
    uptime += dur;
    stats.moved_mb += moved;
    if (!ok) {
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    measured_cost = dur;
  }

  for (;;) {
    core::IntervalCosts costs;
    costs.checkpoint = measured_cost;
    costs.recovery = measured_cost;
    const core::CheckpointOptimizer optimizer(
        core::MarkovModel(model, costs), cfg.optimizer);
    double t_opt = optimizer.optimize(uptime).work_time;
    if (policy.has_value()) {
      // A predictor that catches a fraction r̃ of reclamations lets the
      // periodic schedule relax: stretch T_opt by 1/sqrt(1 - r̃). With
      // recall 0 the factor is exactly 1.0, preserving bit-identity.
      t_opt *= predict::prediction_period_factor(predictor->config(),
                                                 measured_cost);
    }
    double chunk = std::min(t_opt, remaining_work);

    // Scan alerts landing inside this work chunk; the first one the window
    // rule acts on truncates the chunk so the checkpoint starts at the
    // alert's optimal in-window delay.
    bool proactive = false;
    if (policy.has_value()) {
      while (alert_idx < alerts.size() && alerts[alert_idx].time_s <= now) {
        ++alert_idx;
      }
      for (std::size_t i = alert_idx;
           i < alerts.size() && alerts[i].time_s < now + chunk; ++i) {
        const double work_at_risk = alerts[i].time_s - now;
        const auto decision = policy->decide(work_at_risk, measured_cost);
        if (decision.action == predict::ProactiveAction::kSkip) continue;
        const double start_at = alerts[i].time_s + decision.delay_s;
        // The periodic checkpoint beats a delayed proactive start.
        if (start_at >= now + chunk) continue;
        chunk = start_at - now;
        proactive = true;
        break;
      }
    }

    if (now + chunk > eviction_time) {
      // Evicted mid-computation: work since the last checkpoint is lost.
      stats.lost_work_s += eviction_time - now;
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    now += chunk;
    uptime += chunk;

    // Transfer: a periodic checkpoint, an alert-driven proactive one, or
    // the final result upload.
    const auto [dur, moved, ok] = transfer(eviction_time - now);
    record_span(now, {dur, moved, ok}, proactive ? std::uint8_t{2}
                                                 : std::uint8_t{0});
    stats.moved_mb += moved;
    now += dur;
    uptime += dur;
    if (!ok) {
      // The chunk was never committed.
      stats.lost_work_s += chunk;
      ++stats.evictions;
      remaining_work_out = remaining_work;
      has_checkpoint_out = has_checkpoint;
      return {eviction_time, false};
    }
    stats.useful_work_s += chunk;
    if (proactive) ++stats.proactive_checkpoints;
    remaining_work -= chunk;
    has_checkpoint = true;
    measured_cost = dur;
    if (remaining_work <= 1e-9) {
      remaining_work_out = 0.0;
      has_checkpoint_out = true;
      return {now, true};
    }
  }
}

std::vector<PoolTimelineFrame> build_uncontended_timeline(
    const UncontendedTimelineLog& log, double every_s) {
  double max_t = 0.0;
  for (const auto& [t, mb] : log.placement_mb) max_t = std::max(max_t, t);
  for (const double t : log.job_finish_s) max_t = std::max(max_t, t);
  const auto frame_count = static_cast<std::size_t>(
      std::floor(max_t / every_s)) + 1;
  std::vector<PoolTimelineFrame> frames(frame_count);
  for (std::size_t i = 0; i < frame_count; ++i) {
    frames[i].start_s = every_s * static_cast<double>(i);
    frames[i].t_s =
        std::min(every_s * static_cast<double>(i + 1), std::max(max_t, 0.0));
  }
  const auto index_of = [&](double t) {
    return std::min(static_cast<std::size_t>(std::floor(t / every_s)),
                    frame_count - 1);
  };
  for (const auto& [t, mb] : log.placement_mb) {
    frames[index_of(t)].interval_mb += mb;
  }
  for (const double t : log.job_finish_s) {
    ++frames[index_of(t)].jobs_finished;
  }
  return frames;
}

void run_uncontended_engine(const PoolSimConfig& config,
                            const std::vector<dist::DistributionPtr>& fitted,
                            MachinePark& park, numerics::Rng& transfer_rng,
                            predict::FailurePredictor* predictor,
                            std::vector<JobState>& jobs, double& last_finish,
                            UncontendedTimelineLog* tl) {
  // Calendar of (time, job) negotiation events; equal times pop in job-id
  // order, the tie rule the binary heap this replaced also enforced.
  sim::CalendarQueue<std::size_t> queue(config.negotiation_interval_s);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    queue.push(0.0, j, j);
    if (config.hooks.spans != nullptr) config.hooks.spans->open_job(j, 0.0);
  }

  while (!queue.empty()) {
    const auto event = queue.pop();
    const double now = event.time;
    const std::size_t job_id = event.payload;
    if (now >= config.horizon_s) continue;
    JobState& job = jobs[job_id];

    const auto match = [&] {
      PROF_PHASE("uncontended.negotiate");
      return park.place(now);
    }();
    if (!match) {
      // Nothing idle: wait for the next negotiation cycle.
      queue.push(now + config.negotiation_interval_s, job_id, job_id);
      continue;
    }
    ++job.stats.placements;
    pool_metrics().placements.add();
    const double eviction_time = now + match->remaining_s;
    double remaining_after = job.remaining_work;
    bool ckpt_after = job.has_checkpoint;
    const double mb_before = job.stats.moved_mb;
    const std::size_t evictions_before = job.stats.evictions;
    const auto outcome = run_placement(
        job_id, match->machine_index, now, eviction_time, match->uptime_s,
        job.remaining_work, job.has_checkpoint, fitted[match->machine_index],
        config, transfer_rng, predictor, job.stats, remaining_after,
        ckpt_after);
    job.remaining_work = remaining_after;
    job.has_checkpoint = ckpt_after;
    park.occupy(match->machine_index, outcome.end_time);
    pool_metrics().evictions.add(job.stats.evictions - evictions_before);
    pool_metrics().mb_moved.add(job.stats.moved_mb - mb_before);
    if (tl != nullptr) {
      // Whole-placement MB attributed at the placement's end instant: the
      // addends are the same deltas job stats accumulate, so the bucketed
      // timeline partitions total_moved_mb() exactly.
      tl->placement_mb.emplace_back(outcome.end_time,
                                    job.stats.moved_mb - mb_before);
    }
    if (config.hooks.tracer != nullptr) {
      config.hooks.tracer->record_complete("placement", "condor", now,
                                           outcome.end_time - now, job_id,
                                           job.stats.moved_mb - mb_before,
                                           match->machine_index);
    }

    if (outcome.job_finished) {
      job.stats.finished = true;
      job.stats.completion_s = outcome.end_time;
      last_finish = std::max(last_finish, outcome.end_time);
      pool_metrics().finished.add();
      if (config.hooks.spans != nullptr) {
        config.hooks.spans->close_job(job_id, outcome.end_time,
                                      /*finished=*/true);
      }
      if (tl != nullptr) tl->job_finish_s.push_back(outcome.end_time);
      if (config.hooks.tracer != nullptr) {
        config.hooks.tracer->record_instant("job.finished", "condor",
                                            outcome.end_time, job_id,
                                            job.stats.useful_work_s,
                                            match->machine_index);
      }
    } else {
      // Re-queue at the next negotiation after the eviction.
      queue.push(outcome.end_time + config.negotiation_interval_s, job_id,
                 job_id);
    }
  }
  if (config.hooks.spans != nullptr) {
    // Same unfinished-job convention as the contended engine: close at the
    // horizon, the makespan an incomplete run reports.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!jobs[j].stats.finished) {
        config.hooks.spans->close_job(j, config.horizon_s,
                                      /*finished=*/false);
      }
    }
  }
}

std::vector<dist::DistributionPtr> fit_pool_models(
    const std::vector<TimelinePool::MachineSpec>& specs, numerics::Rng& master,
    core::ModelFamily family, std::size_t train_count,
    util::ThreadPool* workers) {
  // Split every per-machine history stream off the master sequentially
  // (split order IS the draw order the legacy loop consumed), then sample +
  // fit from each machine's own child stream in any execution order.
  std::vector<numerics::Rng> hist_rngs;
  hist_rngs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    hist_rngs.push_back(master.split());
  }
  PROF_PHASE("fit.models");
  std::vector<dist::DistributionPtr> fitted(specs.size());
  const auto fit_one = [&](std::size_t i) {
    std::vector<double> history(train_count);
    for (auto& h : history) h = specs[i].availability_law->sample(hist_rngs[i]);
    try {
      fitted[i] = core::Planner::fit_model(history, family);
    } catch (const std::exception&) {
      fitted[i] = specs[i].availability_law;  // degenerate history
    }
  };
  if (workers != nullptr && workers->thread_count() > 1 && specs.size() > 1) {
    // Block-grained: one dispatch per 256 machines, not per machine — at a
    // million machines the per-index overhead would dwarf the tiny fits.
    util::parallel_for_blocks(*workers, specs.size(), 256,
                              [&](std::size_t begin, std::size_t end) {
                                PROF_PHASE("fit.block");
                                for (std::size_t i = begin; i < end; ++i) {
                                  fit_one(i);
                                }
                              });
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) fit_one(i);
  }
  return fitted;
}

}  // namespace harvest::condor::engine
