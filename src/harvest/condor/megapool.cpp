#include "harvest/condor/megapool.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "harvest/dist/conditional.hpp"
#include "harvest/obs/prof.hpp"

namespace harvest::condor::engine {

std::size_t MegaPark::auto_shard_count(std::size_t machines) {
  return std::clamp<std::size_t>(machines / 256, 1, 1024);
}

MegaPark::MegaPark(const std::vector<TimelinePool::MachineSpec>& specs,
                   std::uint64_t pool_seed,
                   std::vector<dist::DistributionPtr> models,
                   MatchPolicy policy, std::uint64_t matchmaker_seed,
                   const MegapoolOptions& options, util::ThreadPool* workers)
    : models_(std::move(models)),
      policy_(policy),
      match_rng_(matchmaker_seed),
      workers_(workers) {
  if (specs.empty()) throw std::invalid_argument("MegaPark: no machines");
  if (specs.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("MegaPark: too many machines (32-bit index)");
  }
  if (policy_ == MatchPolicy::kModelRanked &&
      models_.size() != specs.size()) {
    throw std::invalid_argument(
        "MegaPark: kModelRanked needs one fitted model per machine");
  }
  const std::size_t n = specs.size();

  // Contiguous, 64-aligned shard ranges: shards never share a mask word,
  // so parallel shard advancement is race-free by construction.
  const std::size_t want =
      options.shards != 0 ? options.shards : auto_shard_count(n);
  std::size_t per = (n + want - 1) / want;
  per = ((per + 63) / 64) * 64;
  machines_per_shard_ = per;
  shards_.resize((n + per - 1) / per);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].begin = s * per;
    shards_[s].end = std::min(n, (s + 1) * per);
  }

  laws_.reserve(n);
  busy_mean_.reserve(n);
  rngs_.reserve(n);
  spell_start_.assign(n, 0.0);
  spell_end_.reserve(n);
  timeline_avail_.reserve(n);
  occupied_.assign(n, 0);
  occupied_until_.assign(n, 0.0);
  mask_.assign((n + 63) / 64, 0);

  // Exactly TimelinePool's construction: one master split per machine in
  // index order, then the phase draw and the first spell length from the
  // machine's own stream — so every draw is bitwise the legacy draw.
  numerics::Rng master(pool_seed);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& spec = specs[i];
    if (!spec.availability_law) {
      throw std::invalid_argument("MegaPark: machine without law");
    }
    rngs_.push_back(master.split());
    laws_.push_back(spec.availability_law);
    // Start each machine in a random phase: available with the long-run
    // probability mean_avail / (mean_avail + mean_busy).
    const double ma = spec.availability_law->mean();
    const double mb =
        spec.busy_mean_s > 0.0 ? spec.busy_mean_s : 0.5 * ma;
    busy_mean_.push_back(mb);
    const bool avail = rngs_[i].uniform() < ma / (ma + mb);
    timeline_avail_.push_back(avail ? 1 : 0);
    spell_end_.push_back(avail ? laws_[i]->sample(rngs_[i])
                               : rngs_[i].exponential(1.0 / mb));
    const auto m = static_cast<std::uint32_t>(i);
    Shard& shard = shard_of(i);
    if (avail) {
      set_avail_bit(m);
      ++shard.avail_count;
    }
    // A non-finite spell end (possible in principle from an extreme draw)
    // matches the legacy semantics of a machine frozen in its current
    // state forever: no transition is ever due, so none is queued.
    if (std::isfinite(spell_end_[i])) {
      shard.transitions.push(spell_end_[i], m, m);
    }
  }
}

void MegaPark::set_predictor(const predict::FailurePredictor* predictor) {
  predictor_ = predictor;
}

void MegaPark::step_machine(std::uint32_t m, Shard& shard) {
  spell_start_[m] = spell_end_[m];
  if (timeline_avail_[m] != 0) {
    // Owner reclaims: busy spell.
    spell_end_[m] = spell_start_[m] + rngs_[m].exponential(1.0 / busy_mean_[m]);
    timeline_avail_[m] = 0;
    if (occupied_[m] == 0) {
      clear_avail_bit(m);
      --shard.avail_count;
    }
  } else {
    spell_end_[m] = spell_start_[m] + laws_[m]->sample(rngs_[m]);
    timeline_avail_[m] = 1;
    if (occupied_[m] == 0) {
      set_avail_bit(m);
      ++shard.avail_count;
    }
  }
  if (std::isfinite(spell_end_[m])) {
    shard.transitions.push(spell_end_[m], m, m);
  }
}

void MegaPark::advance_shard(Shard& shard, double now) {
  PROF_PHASE_SHARD("megapool.spell-advance", &shard - shards_.data());
  // Spell transitions first (the `while (spell_end <= now)` walk), then
  // releases: a release frees the machine only if its timeline state — as
  // of `now` — is available, so the order converges to the same mask.
  auto& q = shard.transitions;
  while (!q.empty() && q.next_time() <= now) {
    step_machine(q.pop().payload, shard);
  }
  auto& r = shard.releases;
  while (!r.empty() && r.top().first <= now) {
    const auto [t, m] = r.top();
    r.pop();
    // Lazy entries: the machine may have been re-occupied with a later
    // release since this was queued; the legacy rule is simply
    // "free iff occupied_until <= now".
    if (occupied_[m] != 0 && occupied_until_[m] <= now) {
      occupied_[m] = 0;
      if (timeline_avail_[m] != 0) {
        set_avail_bit(m);
        ++shard.avail_count;
      }
    }
  }
}

void MegaPark::advance_to(double now) {
  due_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    const bool transitions_due =
        !shard.transitions.empty() && shard.transitions.next_time() <= now;
    const bool releases_due =
        !shard.releases.empty() && shard.releases.top().first <= now;
    if (transitions_due || releases_due) due_.push_back(s);
  }
  if (due_.empty()) return;
  if (workers_ != nullptr && workers_->thread_count() > 1 &&
      due_.size() > 1) {
    util::parallel_for_each(*workers_, due_.size(), [&](std::size_t i) {
      advance_shard(shards_[due_[i]], now);
    });
  } else {
    for (const std::size_t s : due_) advance_shard(shards_[s], now);
  }
}

MegaPark::ShardBest MegaPark::scan_shard(const Shard& shard,
                                         double now) const {
  PROF_PHASE_SHARD("megapool.matchmake", &shard - shards_.data());
  ShardBest best;
  const std::size_t w0 = shard.begin >> 6;
  const std::size_t w1 = (shard.end + 63) >> 6;
  for (std::size_t w = w0; w < w1; ++w) {
    std::uint64_t bits = mask_[w];
    while (bits != 0) {
      const std::size_t m =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      // The same doubles the sequential Matchmaker computes: uptime as
      // now - spell_start, compared with strict >, ascending index order.
      const double uptime = now - spell_start_[m];
      double score;
      if (policy_ == MatchPolicy::kLongestUptime) {
        score = uptime;
      } else {
        const auto& model = models_[m];
        try {
          score = dist::Conditional(model, uptime).mean();
        } catch (const std::exception&) {
          score = model->mean();  // survival underflow at extreme age
        }
        if (predictor_ != nullptr) {
          const auto hint =
              predictor_->reclaim_hint(spell_start_[m], spell_end_[m], now);
          if (hint.has_value() && *hint < score) score = *hint;
        }
      }
      if (score > best.score) {
        best.score = score;
        best.machine = m;
        best.uptime = uptime;
        best.found = true;
      }
    }
  }
  return best;
}

std::size_t MegaPark::select_nth_available(std::uint64_t target) const {
  for (const auto& shard : shards_) {
    if (target >= shard.avail_count) {
      target -= shard.avail_count;
      continue;
    }
    const std::size_t w0 = shard.begin >> 6;
    const std::size_t w1 = (shard.end + 63) >> 6;
    for (std::size_t w = w0; w < w1; ++w) {
      std::uint64_t bits = mask_[w];
      const auto in_word = static_cast<std::uint64_t>(std::popcount(bits));
      if (target >= in_word) {
        target -= in_word;
        continue;
      }
      while (target > 0) {
        bits &= bits - 1;
        --target;
      }
      return w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
    }
  }
  throw std::logic_error("MegaPark: availability count out of sync");
}

std::optional<Matchmaker::Match> MegaPark::place(double now) {
  PROF_PHASE("megapool.negotiate");
  if (!(now >= 0.0)) {
    throw std::invalid_argument("MegaPark::place: now >= 0");
  }
  advance_to(now);
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.avail_count;
  if (total == 0) return std::nullopt;

  std::size_t machine = 0;
  double uptime = 0.0;
  if (policy_ == MatchPolicy::kRandom) {
    // The matchmaker RNG draw happens iff candidates exist and consumes the
    // same (count) argument as the sequential path — stream-identical.
    machine = select_nth_available(match_rng_.uniform_index(total));
    uptime = now - spell_start_[machine];
  } else {
    scan_best_.assign(shards_.size(), ShardBest{});
    const auto scan_one = [&](std::size_t s) {
      scan_best_[s] = scan_shard(shards_[s], now);
    };
    if (workers_ != nullptr && workers_->thread_count() > 1 &&
        shards_.size() > 1) {
      util::parallel_for_each(*workers_, shards_.size(), scan_one);
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) scan_one(s);
    }
    // Merging in shard order with the same strict > reproduces the single
    // ascending scan: the first machine attaining the maximum wins.
    PROF_PHASE("megapool.merge");
    double best_score = -1.0;
    bool found = false;
    for (const auto& b : scan_best_) {
      if (b.found && b.score > best_score) {
        best_score = b.score;
        machine = b.machine;
        uptime = b.uptime;
        found = true;
      }
    }
    if (!found) return std::nullopt;  // unreachable while counts are in sync
  }

  Matchmaker::Match match;
  match.machine_index = machine;
  match.uptime_s = uptime;
  match.remaining_s = spell_end_[machine] - now;
  return match;
}

void MegaPark::occupy(std::size_t machine, double until) {
  Shard& shard = shard_of(machine);
  occupied_[machine] = 1;
  occupied_until_[machine] = until;
  // place() just returned this machine, so its candidate bit is set.
  clear_avail_bit(static_cast<std::uint32_t>(machine));
  --shard.avail_count;
  shard.releases.emplace(until, static_cast<std::uint32_t>(machine));
}

void MegaPark::release_at(std::size_t machine, double t) {
  occupied_until_[machine] = t;
  shard_of(machine).releases.emplace(t, static_cast<std::uint32_t>(machine));
}

}  // namespace harvest::condor::engine
