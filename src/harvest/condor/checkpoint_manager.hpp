// The checkpoint manager of the paper's live experiment (§5.2): the process
// on the storage side of the network that serves recovery data, receives
// checkpoints, measures every transfer, and keeps per-job logs from which
// efficiency and network load are computed post facto.
//
// In this emulation, "performing a transfer" means sampling its duration
// from the manager's BandwidthModel and racing it against the remaining
// machine availability; the manager records the same events the real one
// logged (full transfers, interrupted transfers with elapsed time).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "harvest/net/bandwidth_model.hpp"
#include "harvest/numerics/rng.hpp"
#include "harvest/server/fleet.hpp"

namespace harvest::condor {

enum class TransferKind { kRecovery, kCheckpoint };

struct TransferRecord {
  std::size_t job_id = 0;
  TransferKind kind = TransferKind::kRecovery;
  double requested_mb = 0.0;
  double duration_s = 0.0;   ///< elapsed wire time (to cutoff if interrupted)
  double moved_mb = 0.0;     ///< pro-rated bytes that actually traversed
  bool completed = false;
};

struct TransferOutcome {
  double duration_s = 0.0;  ///< full duration if completed, else time to cutoff
  double moved_mb = 0.0;
  bool completed = false;
};

class CheckpointManager {
 public:
  CheckpointManager(net::BandwidthModel link, std::uint64_t seed);

  /// Server-backed manager: transfers route through a checkpoint server
  /// (deterministic capacity, storm stagger, admission) instead of sampling
  /// independent BandwidthModel durations. The manager drives the server on
  /// its own monotone clock, one transfer at a time, so stagger jitter and
  /// rejections surface in the measured costs the planner feeds back on.
  /// `link` is kept only for reporting (expected-cost queries). Shorthand
  /// for a 1-shard fleet; `server_config.seed` and `.tracer` supply the
  /// runtime state FleetConfig::materialize() derives the shard from.
  CheckpointManager(net::BandwidthModel link,
                    const server::ServerConfig& server_config);

  /// Fleet-backed manager: K sharded checkpoint servers behind a routing
  /// policy (server::ServerFleet). A 1-shard fleet behaves exactly like the
  /// ServerConfig overload.
  CheckpointManager(net::BandwidthModel link,
                    const server::FleetConfig& fleet_config,
                    std::uint64_t seed,
                    obs::EventTracer* tracer = nullptr);

  /// Serve/accept a transfer of `megabytes` for `job_id`. The transfer is
  /// cut off after `available_s` seconds (machine eviction); pass +inf for
  /// an unconstrained transfer. Logged either way. `machine_index` feeds
  /// the fleet's rack-affine routing (ignored by 1-shard managers).
  TransferOutcome transfer(std::size_t job_id, TransferKind kind,
                           double megabytes, double available_s,
                           std::size_t machine_index = 0);

  [[nodiscard]] const std::vector<TransferRecord>& log() const { return log_; }
  [[nodiscard]] const net::BandwidthModel& link() const { return link_; }
  [[nodiscard]] bool server_backed() const { return fleet_ != nullptr; }
  /// Fleet-wide aggregate statistics; only meaningful when server_backed().
  [[nodiscard]] server::ServerStats server_stats() const;
  /// Per-shard breakdown; only meaningful when server_backed().
  [[nodiscard]] server::FleetStats fleet_stats() const;

  /// Total megabytes that traversed the network across all logged transfers.
  [[nodiscard]] double total_moved_mb() const;

 private:
  net::BandwidthModel link_;
  numerics::Rng rng_;
  std::unique_ptr<server::ServerFleet> fleet_;
  double server_clock_s_ = 0.0;
  std::vector<TransferRecord> log_;
};

}  // namespace harvest::condor
