#include "harvest/condor/pool.hpp"

#include <stdexcept>

namespace harvest::condor {

Pool::Pool(std::vector<Machine> machines, std::uint64_t seed)
    : machines_(std::move(machines)), rng_(seed) {
  if (machines_.empty()) throw std::invalid_argument("Pool: no machines");
  for (const auto& m : machines_) {
    if (!m.availability_law) {
      throw std::invalid_argument("Pool: machine without availability law");
    }
  }
}

const Machine& Pool::machine(std::size_t i) const {
  if (i >= machines_.size()) throw std::out_of_range("Pool::machine");
  return machines_[i];
}

std::vector<trace::AvailabilityTrace> Pool::collect_traces(
    std::size_t observations) {
  if (observations == 0) {
    throw std::invalid_argument("collect_traces: observations >= 1");
  }
  std::vector<trace::AvailabilityTrace> traces;
  traces.reserve(machines_.size());
  for (const auto& m : machines_) {
    numerics::Rng machine_rng = rng_.split();
    trace::AvailabilityTrace t;
    t.machine_id = m.id;
    t.durations.reserve(observations);
    t.timestamps.reserve(observations);
    double clock = 0.0;
    for (std::size_t i = 0; i < observations; ++i) {
      const double d = m.availability_law->sample(machine_rng);
      // Owner-busy gap before the next occupancy (exponential, mean = half
      // the machine's mean availability — desks are busy about a third of
      // the time).
      const double gap =
          machine_rng.exponential(2.0 / m.availability_law->mean());
      t.timestamps.push_back(clock);
      t.durations.push_back(d);
      clock += d + gap;
    }
    t.validate();
    traces.push_back(std::move(t));
  }
  return traces;
}

Placement Pool::next_placement() {
  Placement p;
  p.machine_index = rng_.uniform_index(machines_.size());
  p.available_for_s =
      machines_[p.machine_index].availability_law->sample(rng_);
  return p;
}

}  // namespace harvest::condor
