// The contended spine: a global discrete-event walk where every recovery and
// checkpoint transfer is a request against a server::ServerFleet (K sharded
// checkpoint servers; K=1 is the single-server case). Jobs interleave in
// simulated time, so simultaneous checkpoints queue for slots and slow each
// other down — the pool-wide interaction the paper's conclusion flags as
// unmodeled. Job events live in a calendar queue keyed by submission
// sequence, which reproduces the (time, seq) order of the binary heap it
// replaced bit-for-bit.
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "harvest/condor/pool_engine.hpp"
#include "harvest/core/optimizer.hpp"
#include "harvest/dist/conditional.hpp"
#include "harvest/obs/prof.hpp"
#include "harvest/predict/proactive_policy.hpp"
#include "harvest/sim/calendar_queue.hpp"

namespace harvest::condor::engine {

namespace {

/// Nearest-rank quantile over an unsorted sample buffer (sorts in place).
double sample_quantile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Live per-interval telemetry for the contended engine: the engine feeds
/// every completed/interrupted transfer's bytes (and waits) into the open
/// interval and calls advance() with its monotone processing time, which
/// cuts frames at cadence boundaries. Every megabyte lands in exactly one
/// frame, so the finished timeline partitions the run's network total.
class FleetTimeline {
 public:
  FleetTimeline(double every_s, std::size_t shards, double capacity_mbps)
      : every_s_(every_s),
        capacity_mbps_(capacity_mbps),
        moved_mb_(shards, 0.0),
        waits_(shards),
        storms_base_(shards, 0) {}

  /// Cut frames for every cadence boundary at or before `t` (the engine's
  /// monotone event-processing time).
  void advance(double t, const server::ServerFleet& fleet) {
    while (next_boundary() <= t) cut(next_boundary(), fleet);
  }

  void add_transfer(std::size_t shard, double mb) {
    moved_mb_[shard] += mb;
  }
  void add_wait(std::size_t shard, double wait_s) {
    waits_[shard].push_back(wait_s);
  }
  void job_finished() { ++jobs_finished_; }

  /// Flush the open interval as a final (possibly short) frame and return
  /// the timeline.
  std::vector<PoolTimelineFrame> finish(double end_t,
                                        const server::ServerFleet& fleet) {
    if (end_t > start_s_ || pending_mb_total() > 0.0 ||
        jobs_finished_ > 0) {
      cut(std::max(end_t, start_s_), fleet);
    }
    return std::move(frames_);
  }

 private:
  [[nodiscard]] double next_boundary() const {
    return start_s_ + every_s_;
  }
  [[nodiscard]] double pending_mb_total() const {
    double mb = 0.0;
    for (const double m : moved_mb_) mb += m;
    return mb;
  }

  void cut(double boundary, const server::ServerFleet& fleet) {
    PoolTimelineFrame frame;
    frame.start_s = start_s_;
    frame.t_s = boundary;
    frame.jobs_finished = jobs_finished_;
    const double dt = boundary - start_s_;
    frame.shards.reserve(moved_mb_.size());
    for (std::size_t k = 0; k < moved_mb_.size(); ++k) {
      const auto& shard = fleet.shard(k);
      PoolShardFrame sf;
      sf.queue_depth = shard.queued_count();
      sf.active = shard.active_count();
      sf.pending_mb = shard.pending_mb();
      sf.moved_mb = moved_mb_[k];
      sf.wait_p50_s = sample_quantile(waits_[k], 0.50);
      sf.wait_p99_s = sample_quantile(waits_[k], 0.99);
      sf.utilization =
          dt > 0.0
              ? std::min(1.0, moved_mb_[k] / (capacity_mbps_ * dt))
              : 0.0;
      const std::uint64_t storms = shard.staggered_count();
      sf.storms_deferred = storms - storms_base_[k];
      storms_base_[k] = storms;
      frame.interval_mb += sf.moved_mb;
      frame.shards.push_back(std::move(sf));
      moved_mb_[k] = 0.0;
      waits_[k].clear();
    }
    fleet.sample_gauges();
    frames_.push_back(std::move(frame));
    start_s_ = boundary;
    jobs_finished_ = 0;
  }

  double every_s_;
  double capacity_mbps_;
  double start_s_ = 0.0;  ///< open interval start (= last cut boundary)
  std::size_t jobs_finished_ = 0;
  std::vector<double> moved_mb_;            ///< per shard, open interval
  std::vector<std::vector<double>> waits_;  ///< per shard, open interval
  std::vector<std::uint64_t> storms_base_;  ///< staggered_count at last cut
  std::vector<PoolTimelineFrame> frames_;
};

class ContendedEngine {
 public:
  ContendedEngine(const PoolSimConfig& config,
                  const std::vector<dist::DistributionPtr>& fitted,
                  MachinePark& park, const server::FleetConfig& fleet_config,
                  std::uint64_t server_seed,
                  predict::FailurePredictor* predictor,
                  std::vector<JobState>& jobs, double& last_finish)
      : config_(config),
        fitted_(fitted),
        park_(park),
        fleet_(fleet_config, server_seed, config.hooks.tracer,
               config.hooks.spans),
        predictor_(predictor),
        jobs_(jobs),
        last_finish_(last_finish),
        states_(jobs.size()),
        events_(config.negotiation_interval_s) {
    if (config.hooks.snapshot_every_s > 0.0) {
      timeline_ = std::make_unique<FleetTimeline>(
          config.hooks.snapshot_every_s, fleet_.shard_count(),
          fleet_.config().server.capacity_mbps);
    }
    if (predictor_ != nullptr) policy_.emplace(predictor_->config());
  }

  void run() {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      push_event(0.0, EventKind::kNegotiate, j, states_[j].generation);
      // All jobs are submitted at t=0; each gets one root span the server's
      // transfer spans (and our backoff/rejection spans) parent under.
      if (config_.hooks.spans != nullptr) config_.hooks.spans->open_job(j, 0.0);
    }
    for (;;) {
      const double heap_t = events_.next_time();
      const auto server_next = fleet_.next_event_s();
      const double server_t =
          server_next.value_or(std::numeric_limits<double>::infinity());
      if (!std::isfinite(heap_t) && !std::isfinite(server_t)) break;
      // Server completions win ties: a transfer that finishes exactly at
      // the eviction instant counts as completed, matching the synchronous
      // walk's `full <= budget` rule.
      if (server_t <= heap_t) {
        observe_time(server_t);
        PROF_PHASE("contended.drain");
        for (const auto& done : fleet_.advance_to(server_t)) {
          handle_completion(done);
        }
        continue;
      }
      const auto event = events_.pop();
      const double t = event.time;
      const auto [kind, gen, job_id] = event.payload;
      if (gen != states_[job_id].generation) continue;  // stale placement
      // Cut timeline frames only at *live* events: stale ones (cancelled
      // placements long in the future) touch nothing, and skipping them
      // keeps the timeline from trailing empty frames past the makespan.
      // Live processing time is monotone, so no event's bytes are split.
      observe_time(t);
      switch (kind) {
        case EventKind::kNegotiate:
          handle_negotiate(job_id, t);
          break;
        case EventKind::kWorkDone:
          handle_work_done(job_id, t);
          break;
        case EventKind::kRetry:
          // The backoff span closes where the retry fires; the new
          // submission's own spans start from here.
          record_backoff_span(job_id, t);
          submit_transfer(job_id, t);
          break;
        case EventKind::kEvict:
          handle_evict(job_id, t);
          break;
        case EventKind::kAlert:
          handle_alert(job_id, t);
          break;
      }
    }
    if (config_.hooks.spans != nullptr) {
      // Jobs the horizon cut off close unfinished at the horizon — the same
      // convention makespan_s reports for incomplete runs.
      for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (!jobs_[j].stats.finished) {
          config_.hooks.spans->close_job(j, config_.horizon_s,
                                         /*finished=*/false);
        }
      }
    }
  }

  [[nodiscard]] server::FleetStats fleet_stats() const {
    return fleet_.stats();
  }

  /// Flush the open interval and hand over the timeline (empty when
  /// snapshot_every_s was 0). Call once, after run().
  [[nodiscard]] std::vector<PoolTimelineFrame> take_timeline() {
    if (timeline_ == nullptr) return {};
    return timeline_->finish(last_t_, fleet_);
  }

 private:
  enum class EventKind : std::uint8_t {
    kNegotiate,
    kWorkDone,
    kRetry,
    kEvict,
    kAlert  ///< predictor alert lands (prediction scenario only)
  };
  enum class Phase : std::uint8_t {
    kIdle,
    kWorking,
    kTransferring,
    kBackoff,
    kDone
  };
  using TransferKind = server::TransferKind;

  struct PerJob {
    Phase phase = Phase::kIdle;
    std::uint32_t generation = 0;  ///< bumps at placement end; stales events
    std::size_t machine = 0;
    double placement_start = 0.0;
    double eviction_time = 0.0;
    double uptime_at_start = 0.0;
    double measured_cost = 0.0;  ///< last observed transfer cost (wait+wire)
    double chunk = 0.0;          ///< work chunk awaiting its checkpoint
    double work_start = 0.0;
    /// Scheduled checkpoint instant of the current chunk. handle_work_done
    /// only fires when the event's time matches exactly — an alert that
    /// truncates the chunk reschedules it here and the superseded kWorkDone
    /// (still queued) no-ops.
    double work_done_t = 0.0;
    /// The current chunk's checkpoint was rescheduled by an alert.
    bool pending_proactive = false;
    TransferKind transfer_kind = TransferKind::kRecovery;
    server::TransferId transfer_id = 0;
    double transfer_submit_s = 0.0;
    std::uint32_t backoff_attempts = 0;  ///< resets on a completed transfer
    double backoff_start = 0.0;          ///< when the current backoff began
    double placement_mb = 0.0;           ///< bytes moved this placement
  };

  struct EventRec {
    EventKind kind = EventKind::kNegotiate;
    std::uint32_t generation = 0;
    std::size_t job = 0;
  };

  void push_event(double t, EventKind kind, std::size_t job,
                  std::uint32_t gen) {
    // The push sequence is the tie-break key: equal-time events pop in
    // submission order, exactly the (time, seq) heap discipline.
    events_.push(t, next_seq_++, EventRec{kind, gen, job});
  }

  /// Record the engine's processing clock and cut any due timeline frames.
  void observe_time(double t) {
    last_t_ = t;
    if (timeline_ != nullptr) timeline_->advance(t, fleet_);
  }

  void handle_negotiate(std::size_t job_id, double now) {
    PROF_PHASE("contended.negotiate");
    if (now >= config_.horizon_s) return;  // job reports unfinished
    const auto match = park_.place(now);
    if (!match) {
      push_event(now + config_.negotiation_interval_s, EventKind::kNegotiate,
                 job_id, states_[job_id].generation);
      return;
    }
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    ++job.stats.placements;
    pool_metrics().placements.add();
    st.machine = match->machine_index;
    st.placement_start = now;
    st.eviction_time = now + match->remaining_s;
    st.uptime_at_start = match->uptime_s;
    st.placement_mb = 0.0;
    st.measured_cost =
        config_.checkpoint_size_mb / fleet_.config().server.capacity_mbps;
    park_.occupy(st.machine, st.eviction_time);
    push_event(st.eviction_time, EventKind::kEvict, job_id, st.generation);
    if (predictor_ != nullptr && st.eviction_time > now) {
      // The oracle sees the placement's hidden reclamation instant and
      // drops its alerts into the event stream; the generation stamp voids
      // them if the placement ends early (job finished).
      for (const auto& a : predictor_->alerts_for_spell(now, st.eviction_time,
                                                        st.machine)) {
        push_event(a.time_s, EventKind::kAlert, job_id, st.generation);
      }
    }

    if (job.has_checkpoint) {
      st.transfer_kind = TransferKind::kRecovery;
      if (st.backoff_attempts > 0) {
        // This client's last transfer was interrupted or rejected: back off
        // before hammering the server again.
        st.phase = Phase::kBackoff;
        st.backoff_start = now;
        push_event(
            now + fleet_.backoff().delay_s(st.backoff_attempts - 1),
            EventKind::kRetry, job_id, st.generation);
      } else {
        submit_transfer(job_id, now);
      }
    } else {
      enter_work(job_id, now);
    }
  }

  void enter_work(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    const double uptime = st.uptime_at_start + (now - st.placement_start);
    core::IntervalCosts costs;
    costs.checkpoint = st.measured_cost;
    costs.recovery = st.measured_cost;
    const core::CheckpointOptimizer optimizer(
        core::MarkovModel(fitted_[st.machine], costs), config_.optimizer);
    double t_opt = optimizer.optimize(uptime).work_time;
    if (predictor_ != nullptr) {
      // Aupy et al. period stretch: the predictor absorbs a fraction r̃ of
      // reclamations, so the reactive schedule relaxes by 1/sqrt(1 - r̃).
      // Exactly 1.0 at recall 0, preserving bit-identity.
      t_opt *= predict::prediction_period_factor(predictor_->config(),
                                                 st.measured_cost);
    }
    st.chunk = std::min(t_opt, job.remaining_work);
    st.phase = Phase::kWorking;
    st.work_start = now;
    st.work_done_t = now + st.chunk;
    st.pending_proactive = false;
    // If the chunk outlives the availability spell, the eviction event
    // (already queued) fires first and charges the lost work.
    push_event(st.work_done_t, EventKind::kWorkDone, job_id, st.generation);
  }

  void handle_work_done(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    // Exact-time guard: an alert that truncated the chunk rescheduled the
    // checkpoint, leaving the original kWorkDone queued. The scheduled
    // instant is stored verbatim from the push, so the comparison is exact
    // (never a recomputation) and the legacy path — one kWorkDone per
    // enter_work — always passes it.
    if (st.phase != Phase::kWorking || now != st.work_done_t) return;
    st.transfer_kind = st.pending_proactive ? TransferKind::kProactive
                                            : TransferKind::kCheckpoint;
    st.pending_proactive = false;
    submit_transfer(job_id, now);
  }

  /// A predictor alert lands while (possibly) working: apply the window
  /// rule against the work currently at risk and, when it acts inside the
  /// current chunk, pull the checkpoint forward to the alert's optimal
  /// in-window start.
  void handle_alert(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    if (st.phase != Phase::kWorking) return;  // mid-transfer/backoff: ignore
    const auto decision =
        policy_->decide(now - st.work_start, st.measured_cost);
    if (decision.action == predict::ProactiveAction::kSkip) return;
    const double start_at = now + decision.delay_s;
    // The already-scheduled checkpoint beats a delayed proactive start.
    if (start_at >= st.work_done_t) return;
    st.chunk = start_at - st.work_start;
    st.work_done_t = start_at;
    st.pending_proactive = true;
    push_event(start_at, EventKind::kWorkDone, job_id, st.generation);
  }

  void submit_transfer(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    server::ServerTransferRequest req;
    req.job_id = job_id;
    req.megabytes = config_.checkpoint_size_mb;
    // The traffic class rides the request: admission and the schedulers
    // give recoveries headroom and service priority (admission.hpp), and
    // the fleet's static routing shards on the submitting machine.
    req.kind = st.transfer_kind;
    req.machine_index = st.machine;
    // Only checkpoint-class transfers (periodic or proactive) carry the
    // urgency hint: a checkpoint racing the machine's predicted death has
    // an uncommitted chunk at risk, so jumping the queue saves real work.
    // A recovery has nothing committed yet — fast-tracking it onto a
    // machine predicted to die soon just starts a chunk that the eviction
    // then destroys, so recoveries queue FIFO within their class.
    if (st.transfer_kind != TransferKind::kRecovery) {
      req.predicted_remaining_s = predicted_remaining(job_id, now);
    }
    const auto outcome = fleet_.submit(req, now);
    if (outcome.status == server::SubmitStatus::kRejected) {
      ++job.stats.rejected_submits;
      ++st.backoff_attempts;
      st.phase = Phase::kBackoff;
      st.backoff_start = now;
      push_event(now + fleet_.backoff().delay_s(st.backoff_attempts - 1),
                 EventKind::kRetry, job_id, st.generation);
      return;
    }
    st.phase = Phase::kTransferring;
    st.transfer_id = outcome.id;
    st.transfer_submit_s = now;
  }

  /// Close the job's current backoff interval as a span ending at `end_s`
  /// (the retry firing, or the eviction that cancels it).
  void record_backoff_span(std::size_t job_id, double end_s) {
    if (config_.hooks.spans == nullptr) return;
    const PerJob& st = states_[job_id];
    if (st.phase != Phase::kBackoff) return;
    config_.hooks.spans->record_backoff(
        job_id, st.backoff_start, end_s,
        static_cast<std::uint8_t>(st.transfer_kind));
  }

  /// What the urgency scheduler orders by: the fitted model's expected
  /// remaining availability of the submitting machine right now (same
  /// estimate kModelRanked matchmaking uses).
  [[nodiscard]] double predicted_remaining(std::size_t job_id,
                                           double now) const {
    const PerJob& st = states_[job_id];
    const double uptime = st.uptime_at_start + (now - st.placement_start);
    try {
      return dist::Conditional(fitted_[st.machine], uptime).mean();
    } catch (const std::exception&) {
      return fitted_[st.machine]->mean();  // survival underflow at old age
    }
  }

  void handle_completion(const server::ServerCompletion& done) {
    const auto job_id = static_cast<std::size_t>(done.job_id);
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    const double now = done.finish_s;
    job.stats.moved_mb += done.megabytes;
    job.stats.server_wait_s += done.wait_s();
    st.placement_mb += done.megabytes;
    st.backoff_attempts = 0;
    pool_metrics().mb_moved.add(done.megabytes);
    if (timeline_ != nullptr) {
      const std::size_t shard = server::ServerFleet::shard_of(done.id);
      timeline_->add_transfer(shard, done.megabytes);
      timeline_->add_wait(shard, done.wait_s());
    }
    // The cost the job *felt* — queueing plus wire time — is what it feeds
    // back into the planner as C and R, so schedules adapt to congestion.
    // Smoothed (EWMA), not raw: a single lucky fast transfer would collapse
    // the planner's C, trigger a burst of frequent checkpoints, lengthen
    // everyone's queue, and oscillate — the smoothing damps that closed
    // loop regardless of scheduling policy.
    const double sample = std::max(now - st.transfer_submit_s, 1e-6);
    st.measured_cost = 0.5 * st.measured_cost + 0.5 * sample;

    if (st.transfer_kind == TransferKind::kRecovery) {
      enter_work(job_id, now);
      return;
    }
    // Checkpoint (periodic, proactive, or final result upload) committed.
    if (st.transfer_kind == TransferKind::kProactive) {
      ++job.stats.proactive_checkpoints;
    }
    job.stats.useful_work_s += st.chunk;
    job.remaining_work -= st.chunk;
    job.has_checkpoint = true;
    if (job.remaining_work <= 1e-9) {
      finish_job(job_id, now);
    } else {
      enter_work(job_id, now);
    }
  }

  void finish_job(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    job.stats.finished = true;
    job.stats.completion_s = now;
    last_finish_ = std::max(last_finish_, now);
    pool_metrics().finished.add();
    if (timeline_ != nullptr) timeline_->job_finished();
    park_.release_at(st.machine, now);
    if (config_.hooks.tracer != nullptr) {
      config_.hooks.tracer->record_complete("placement", "condor",
                                            st.placement_start,
                                            now - st.placement_start, job_id,
                                            st.placement_mb, st.machine);
      config_.hooks.tracer->record_instant("job.finished", "condor", now,
                                           job_id, job.stats.useful_work_s,
                                           st.machine);
    }
    if (config_.hooks.spans != nullptr) {
      config_.hooks.spans->close_job(job_id, now, /*finished=*/true);
    }
    st.phase = Phase::kDone;
    ++st.generation;  // cancels the pending eviction event
  }

  void handle_evict(std::size_t job_id, double now) {
    PerJob& st = states_[job_id];
    JobState& job = jobs_[job_id];
    switch (st.phase) {
      case Phase::kWorking:
        job.stats.lost_work_s += now - st.work_start;
        break;
      case Phase::kTransferring: {
        const auto removal = fleet_.remove(st.transfer_id, now);
        job.stats.moved_mb += removal.moved_mb;
        st.placement_mb += removal.moved_mb;
        pool_metrics().mb_moved.add(removal.moved_mb);
        if (timeline_ != nullptr) {
          timeline_->add_transfer(
              server::ServerFleet::shard_of(st.transfer_id),
              removal.moved_mb);
        }
        if (st.transfer_kind != TransferKind::kRecovery) {
          job.stats.lost_work_s += st.chunk;  // never committed
        }
        ++st.backoff_attempts;  // interrupted: retry backs off next time
        break;
      }
      case Phase::kBackoff:
        // The pending retry dies with the placement; truncate its backoff
        // span at the eviction so attributed backoff time is time actually
        // spent waiting, not the schedule that never ran out.
        record_backoff_span(job_id, now);
        break;
      case Phase::kIdle:
      case Phase::kDone:
        break;
    }
    ++job.stats.evictions;
    pool_metrics().evictions.add();
    if (config_.hooks.tracer != nullptr) {
      config_.hooks.tracer->record_complete("placement", "condor",
                                            st.placement_start,
                                            now - st.placement_start, job_id,
                                            st.placement_mb, st.machine);
    }
    st.phase = Phase::kIdle;
    ++st.generation;  // cancels pending work/retry events
    push_event(now + config_.negotiation_interval_s, EventKind::kNegotiate,
               job_id, st.generation);
  }

  const PoolSimConfig& config_;
  const std::vector<dist::DistributionPtr>& fitted_;
  MachinePark& park_;
  server::ServerFleet fleet_;
  predict::FailurePredictor* predictor_;        ///< null = legacy engine
  std::optional<predict::ProactivePolicy> policy_;
  std::vector<JobState>& jobs_;
  double& last_finish_;
  std::vector<PerJob> states_;
  std::unique_ptr<FleetTimeline> timeline_;  ///< null when cadence is 0
  double last_t_ = 0.0;  ///< latest event-processing time (monotone)

  sim::CalendarQueue<EventRec> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace

ContendedOutputs run_contended_engine(
    const PoolSimConfig& config,
    const std::vector<dist::DistributionPtr>& fitted, MachinePark& park,
    const server::FleetConfig& fleet_config, std::uint64_t server_seed,
    predict::FailurePredictor* predictor, std::vector<JobState>& jobs,
    double& last_finish) {
  ContendedEngine engine(config, fitted, park, fleet_config, server_seed,
                         predictor, jobs, last_finish);
  engine.run();
  ContendedOutputs out;
  out.fleet = engine.fleet_stats();
  out.timeline = engine.take_timeline();
  return out;
}

}  // namespace harvest::condor::engine
