// ServerFleet: K independent CheckpointServer shards behind the single
// submit / advance_to / remove / next_event_s facade a simulation engine
// already drives. One checkpoint server saturates well before the paper's
// ~640-machine Condor pool — checkpoint I/O bandwidth, not compute, bounds
// utilization at scale — so sites deploy one server per rack and route
// traffic across them. The fleet models exactly that:
//
//   * routing is pluggable: `static` shards on machine index (rack-affine
//     — a machine always checkpoints to its rack's server), `hash` shards
//     on a job-id hash (job-affine — a job's checkpoint and its later
//     recovery meet the same server wherever the job lands), and
//     `least_loaded` picks the shard with the fewest queued + in-service
//     megabytes at submission;
//   * every shard is an unmodified CheckpointServer, so admission control,
//     traffic classes, scheduling policy, and storm staggering all apply
//     per shard; a 1-shard fleet is bit-identical to driving the server
//     directly;
//   * per-shard runtime state (RNG seed, tracer) is derived in exactly ONE
//     documented place, FleetConfig::materialize(), replacing the old
//     silent "seed and tracer are overridden" contract;
//   * stats aggregate across shards (FleetStats), including the imbalance
//     ratio routing quality is judged by, and each shard feeds a
//     `server.fleet.shard<k>.wait_s` histogram in the default
//     obs::MetricsRegistry so per-shard wait percentiles are scrapeable.
//
// TransferIds are fleet-global: the owning shard index lives in the top
// bits (shard 0 ids are unchanged, preserving single-server bit-identity),
// so remove() needs no lookup table.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/server/checkpoint_server.hpp"

namespace harvest::server {

/// How submissions are spread across shards.
enum class RoutingPolicy {
  kStatic,      ///< machine_index % shards (rack-affine)
  kHash,        ///< splitmix64(job_id) % shards (job-affine)
  kLeastLoaded  ///< fewest queued + in-service megabytes; ties → lowest idx
};

[[nodiscard]] std::string to_string(RoutingPolicy routing);
[[nodiscard]] RoutingPolicy routing_from_string(const std::string& name);

/// Shard index bits reserved in the top of a fleet TransferId.
inline constexpr unsigned kFleetShardBits = 10;
inline constexpr std::size_t kMaxFleetShards = std::size_t{1}
                                               << kFleetShardBits;

struct FleetConfig {
  std::size_t shards = 1;
  RoutingPolicy routing = RoutingPolicy::kStatic;
  /// Static per-shard knobs (capacity, slots, queue, policy, stagger,
  /// backoff). The `seed` and `tracer` fields of this template are NOT
  /// used — materialize() derives them per shard from its arguments.
  ServerConfig server;

  /// The one place per-shard runtime state is derived: returns the
  /// ServerConfig shard `shard_idx` actually runs with. `seed` is mixed
  /// with the shard index (shard 0 keeps `seed` verbatim, so a 1-shard
  /// fleet is bit-identical to a single server seeded with `seed`);
  /// `tracer` and `spans` are attached as-is and `shard_index` is stamped,
  /// so every shard reports into one fleet-wide span store with its own
  /// shard label. Everything else copies from `server`.
  [[nodiscard]] ServerConfig materialize(std::size_t shard_idx,
                                         std::uint64_t seed,
                                         obs::EventTracer* tracer,
                                         obs::SpanStore* spans = nullptr) const;

  /// Shard-count/routing checks plus the per-shard ServerConfig's own
  /// validate() warnings. Throws std::invalid_argument on hard errors
  /// (0 shards, more than kMaxFleetShards).
  [[nodiscard]] ServerConfigValidation validate() const;
};

/// Aggregated fleet ledger: the sum plus the per-shard breakdown.
struct FleetStats {
  ServerStats total;
  std::vector<ServerStats> shards;

  /// max over shards of moved_mb, divided by the per-shard mean — 1.0 is a
  /// perfectly balanced fleet, K is everything-on-one-shard. 1.0 when no
  /// bytes moved anywhere.
  [[nodiscard]] double imbalance_ratio() const;
};

class ServerFleet {
 public:
  /// `seed`/`tracer`/`spans` are the fleet-level runtime state each
  /// shard's config is materialized from (see FleetConfig::materialize).
  ServerFleet(const FleetConfig& config, std::uint64_t seed,
              obs::EventTracer* tracer = nullptr,
              obs::SpanStore* spans = nullptr);

  /// Route and submit. The returned id is fleet-global (shard in the top
  /// bits); pass it back to remove(). Same monotone-time contract as
  /// CheckpointServer::submit, fleet-wide.
  SubmitOutcome submit(const ServerTransferRequest& request, double now);

  /// Earliest event over all shards; nullopt when the whole fleet idles.
  [[nodiscard]] std::optional<double> next_event_s() const;

  /// Advance every shard to `t`; completions are merged in finish order
  /// (ties: lowest shard first) and carry fleet-global ids.
  std::vector<ServerCompletion> advance_to(double t);

  /// Eviction by fleet-global id; dispatches to the owning shard.
  ServerRemoval remove(TransferId id, double now);

  /// Which shard a request would go to right now (exposed for tests and
  /// for callers that want routing introspection; least_loaded depends on
  /// current shard load, so the answer is only stable until the next
  /// submit/advance).
  [[nodiscard]] std::size_t route(const ServerTransferRequest& request) const;

  /// Shard that owns a fleet-global TransferId.
  [[nodiscard]] static std::size_t shard_of(TransferId id) {
    return static_cast<std::size_t>(id >> (64 - kFleetShardBits));
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const CheckpointServer& shard(std::size_t i) const {
    return *shards_[i];
  }
  /// All shards share one backoff schedule (same base/cap).
  [[nodiscard]] const ExponentialBackoff& backoff() const {
    return shards_.front()->backoff();
  }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] FleetStats stats() const;

  /// Publish every shard's instantaneous load into the default registry as
  /// `server.fleet.shard<k>.queue_depth` / `.active` / `.pending_mb`
  /// gauges. Called at timeline frame cuts (and scrape-able from harvestd);
  /// cheap — gauge handles are cached at construction.
  void sample_gauges() const;

 private:
  [[nodiscard]] TransferId to_fleet_id(std::size_t shard,
                                       TransferId local) const;

  FleetConfig config_;
  std::vector<std::unique_ptr<CheckpointServer>> shards_;
  /// Cached per-shard wait histograms ("server.fleet.shard<k>.wait_s").
  std::vector<obs::Histogram*> shard_wait_s_;
  /// Cached per-shard load gauges fed by sample_gauges().
  std::vector<obs::Gauge*> shard_queue_depth_;
  std::vector<obs::Gauge*> shard_active_;
  std::vector<obs::Gauge*> shard_pending_mb_;
};

}  // namespace harvest::server
