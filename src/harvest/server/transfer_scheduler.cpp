#include "harvest/server/transfer_scheduler.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

namespace harvest::server {

std::string to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return "fifo";
    case SchedulerPolicy::kFair:
      return "fair";
    case SchedulerPolicy::kUrgency:
      return "urgency";
  }
  return "unknown";
}

SchedulerPolicy policy_from_string(const std::string& name) {
  if (name == "fifo") return SchedulerPolicy::kFifo;
  if (name == "fair") return SchedulerPolicy::kFair;
  if (name == "urgency") return SchedulerPolicy::kUrgency;
  throw std::invalid_argument("unknown scheduler policy: " + name +
                              " (expected fifo|fair|urgency)");
}

namespace {

[[nodiscard]] std::size_t fifo_pick(
    const std::vector<WaitingTransfer>& waiting) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting.size(); ++i) {
    const auto& w = waiting[i];
    const auto& b = waiting[best];
    if (w.arrival_s < b.arrival_s ||
        (w.arrival_s == b.arrival_s && w.id < b.id)) {
      best = i;
    }
  }
  return best;
}

/// Class priority shared by every policy: if any RECOVERY is waiting, the
/// next transfer to serve is the earliest-arrived recovery; the policy's
/// own rule only orders the checkpoint class. Returns the pick, or nullopt
/// when no recovery waits.
[[nodiscard]] std::optional<std::size_t> recovery_pick(
    const std::vector<WaitingTransfer>& waiting) {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    const auto& w = waiting[i];
    if (w.kind != TransferKind::kRecovery) continue;
    if (!best.has_value()) {
      best = i;
      continue;
    }
    const auto& b = waiting[*best];
    if (w.arrival_s < b.arrival_s ||
        (w.arrival_s == b.arrival_s && w.id < b.id)) {
      best = i;
    }
  }
  return best;
}

class FifoScheduler final : public TransferScheduler {
 public:
  [[nodiscard]] std::size_t pick_next(
      const std::vector<WaitingTransfer>& waiting,
      double /*now*/) const override {
    if (const auto r = recovery_pick(waiting)) return *r;
    return fifo_pick(waiting);
  }
  [[nodiscard]] SchedulerPolicy policy() const override {
    return SchedulerPolicy::kFifo;
  }
};

class FairScheduler final : public TransferScheduler {
 public:
  // With unbounded service nothing ever waits for a slot; a transfer is
  // only parked while storm-avoidance defers it, so FIFO order among the
  // eligible (recoveries first) is the natural deterministic choice.
  [[nodiscard]] std::size_t pick_next(
      const std::vector<WaitingTransfer>& waiting,
      double /*now*/) const override {
    if (const auto r = recovery_pick(waiting)) return *r;
    return fifo_pick(waiting);
  }
  [[nodiscard]] bool unbounded_service() const override { return true; }
  [[nodiscard]] SchedulerPolicy policy() const override {
    return SchedulerPolicy::kFair;
  }
};

class UrgencyScheduler final : public TransferScheduler {
 public:
  explicit UrgencyScheduler(double horizon_s) : horizon_s_(horizon_s) {}

  // FIFO, except that CHECKPOINT transfers flagged urgent at submission —
  // predicted remaining availability within the imminence horizon — jump
  // the queue, earliest predicted death (arrival + predicted remaining)
  // first. Waiting recoveries outrank even urgent checkpoints (class
  // priority, see the header). The urgent class is decided by the
  // submission-time prediction alone, NOT by time spent waiting: if long
  // waiters aged into the urgent set, a saturated queue would migrate
  // wholesale into it and the policy would collapse back to global
  // earliest-deadline-first, whose differential service destabilizes the
  // planners' cost feedback (see the header).
  [[nodiscard]] std::size_t pick_next(
      const std::vector<WaitingTransfer>& waiting,
      double /*now*/) const override {
    if (const auto r = recovery_pick(waiting)) return *r;
    bool have_urgent = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      const auto& w = waiting[i];
      if (!(w.predicted_remaining_s <= horizon_s_)) continue;
      if (!have_urgent) {
        have_urgent = true;
        best = i;
        continue;
      }
      const auto& b = waiting[best];
      const double wd = w.arrival_s + w.predicted_remaining_s;
      const double bd = b.arrival_s + b.predicted_remaining_s;
      if (wd < bd || (wd == bd && w.id < b.id)) best = i;
    }
    return have_urgent ? best : fifo_pick(waiting);
  }
  [[nodiscard]] SchedulerPolicy policy() const override {
    return SchedulerPolicy::kUrgency;
  }

 private:
  double horizon_s_;
};

}  // namespace

std::unique_ptr<TransferScheduler> make_scheduler(SchedulerPolicy policy,
                                                  double urgency_horizon_s) {
  if (std::isnan(urgency_horizon_s) || urgency_horizon_s < 0.0) {
    throw std::invalid_argument(
        "make_scheduler: urgency horizon must be >= 0");
  }
  switch (policy) {
    case SchedulerPolicy::kFifo:
      return std::make_unique<FifoScheduler>();
    case SchedulerPolicy::kFair:
      return std::make_unique<FairScheduler>();
    case SchedulerPolicy::kUrgency:
      return std::make_unique<UrgencyScheduler>(urgency_horizon_s);
  }
  throw std::invalid_argument("make_scheduler: unknown policy");
}

}  // namespace harvest::server
