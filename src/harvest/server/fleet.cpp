#include "harvest/server/fleet.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "harvest/obs/prof.hpp"

namespace harvest::server {
namespace {

/// splitmix64 finalizer: the job-id hash for kHash routing and the
/// per-shard seed mixer. Chosen for full avalanche so consecutive job ids
/// (and shard indices) spread uniformly.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string to_string(RoutingPolicy routing) {
  switch (routing) {
    case RoutingPolicy::kStatic:
      return "static";
    case RoutingPolicy::kHash:
      return "hash";
    case RoutingPolicy::kLeastLoaded:
      return "least_loaded";
  }
  return "unknown";
}

RoutingPolicy routing_from_string(const std::string& name) {
  if (name == "static") return RoutingPolicy::kStatic;
  if (name == "hash") return RoutingPolicy::kHash;
  if (name == "least_loaded" || name == "least-loaded") {
    return RoutingPolicy::kLeastLoaded;
  }
  throw std::invalid_argument("unknown routing policy: " + name +
                              " (expected static|hash|least_loaded)");
}

ServerConfig FleetConfig::materialize(std::size_t shard_idx,
                                      std::uint64_t seed,
                                      obs::EventTracer* tracer,
                                      obs::SpanStore* spans) const {
  ServerConfig sc = server;
  // Shard 0 keeps the fleet seed verbatim: a 1-shard fleet must drive an
  // RNG stream bit-identical to a standalone server seeded with `seed`.
  sc.seed = shard_idx == 0 ? seed : mix64(seed ^ mix64(shard_idx));
  sc.tracer = tracer;
  sc.spans = spans;
  sc.shard_index = shard_idx;
  return sc;
}

ServerConfigValidation FleetConfig::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("FleetConfig: need at least one shard");
  }
  if (shards > kMaxFleetShards) {
    throw std::invalid_argument(
        "FleetConfig: at most " + std::to_string(kMaxFleetShards) +
        " shards (the shard index must fit the TransferId tag bits)");
  }
  auto v = server::validate(server);
  if (shards == 1 && routing == RoutingPolicy::kLeastLoaded) {
    v.warnings.push_back(
        "least_loaded routing is a no-op with a single shard");
  }
  return v;
}

double FleetStats::imbalance_ratio() const {
  if (shards.empty() || !(total.moved_mb > 0.0)) return 1.0;
  double peak = 0.0;
  for (const auto& s : shards) peak = std::max(peak, s.moved_mb);
  const double mean = total.moved_mb / static_cast<double>(shards.size());
  return peak / mean;
}

ServerFleet::ServerFleet(const FleetConfig& config, std::uint64_t seed,
                         obs::EventTracer* tracer, obs::SpanStore* spans)
    : config_(config) {
  const auto v = config.validate();  // throws on hard errors
  (void)v;
  shards_.reserve(config.shards);
  shard_wait_s_.reserve(config.shards);
  for (std::size_t k = 0; k < config.shards; ++k) {
    shards_.push_back(std::make_unique<CheckpointServer>(
        config.materialize(k, seed, tracer, spans)));
    const std::string prefix = "server.fleet.shard" + std::to_string(k);
    auto& reg = obs::default_registry();
    shard_wait_s_.push_back(&reg.histogram(prefix + ".wait_s"));
    shard_queue_depth_.push_back(&reg.gauge(prefix + ".queue_depth"));
    shard_active_.push_back(&reg.gauge(prefix + ".active"));
    shard_pending_mb_.push_back(&reg.gauge(prefix + ".pending_mb"));
  }
}

void ServerFleet::sample_gauges() const {
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shard_queue_depth_[k]->set(
        static_cast<double>(shards_[k]->queued_count()));
    shard_active_[k]->set(static_cast<double>(shards_[k]->active_count()));
    shard_pending_mb_[k]->set(shards_[k]->pending_mb());
  }
}

TransferId ServerFleet::to_fleet_id(std::size_t shard,
                                    TransferId local) const {
  return (static_cast<TransferId>(shard) << (64 - kFleetShardBits)) | local;
}

std::size_t ServerFleet::route(const ServerTransferRequest& request) const {
  const std::size_t n = shards_.size();
  if (n == 1) return 0;
  switch (config_.routing) {
    case RoutingPolicy::kStatic:
      return request.machine_index % n;
    case RoutingPolicy::kHash:
      return static_cast<std::size_t>(mix64(request.job_id) % n);
    case RoutingPolicy::kLeastLoaded: {
      std::size_t best = 0;
      double best_mb = shards_[0]->pending_mb();
      for (std::size_t k = 1; k < n; ++k) {
        const double mb = shards_[k]->pending_mb();
        if (mb < best_mb) {
          best = k;
          best_mb = mb;
        }
      }
      return best;
    }
  }
  return 0;
}

SubmitOutcome ServerFleet::submit(const ServerTransferRequest& request,
                                  double now) {
  PROF_PHASE("fleet.submit");
  const std::size_t shard = route(request);
  SubmitOutcome outcome = shards_[shard]->submit(request, now);
  if (outcome.status != SubmitStatus::kRejected) {
    outcome.id = to_fleet_id(shard, outcome.id);
  }
  return outcome;
}

std::optional<double> ServerFleet::next_event_s() const {
  std::optional<double> next;
  for (const auto& s : shards_) {
    const auto e = s->next_event_s();
    if (e.has_value() && (!next.has_value() || *e < *next)) next = e;
  }
  return next;
}

std::vector<ServerCompletion> ServerFleet::advance_to(double t) {
  PROF_PHASE("fleet.drain");
  std::vector<ServerCompletion> done;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    for (auto& c : shards_[k]->advance_to(t)) {
      c.id = to_fleet_id(k, c.id);
      shard_wait_s_[k]->observe(c.wait_s());
      done.push_back(c);
    }
  }
  // Merge shards' (individually ordered) completion streams into global
  // finish order; stable sort keeps equal-time completions in shard order,
  // so the merged stream is deterministic.
  std::stable_sort(done.begin(), done.end(),
                   [](const ServerCompletion& a, const ServerCompletion& b) {
                     return a.finish_s < b.finish_s;
                   });
  return done;
}

ServerRemoval ServerFleet::remove(TransferId id, double now) {
  const std::size_t shard = shard_of(id);
  if (shard >= shards_.size()) return {};
  const TransferId local =
      id & ((TransferId{1} << (64 - kFleetShardBits)) - 1);
  return shards_[shard]->remove(local, now);
}

FleetStats ServerFleet::stats() const {
  FleetStats fs;
  fs.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    fs.shards.push_back(s->stats());
    fs.total += s->stats();
  }
  return fs;
}

}  // namespace harvest::server
