#include "harvest/server/checkpoint_server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/prof.hpp"

namespace harvest::server {
namespace {

struct ServerMetrics {
  obs::Counter& submitted;
  obs::Counter& started;
  obs::Counter& rejected;
  obs::Counter& deferred;
  obs::Counter& completed;
  obs::Counter& interrupted;
  obs::Gauge& queue_depth;
  obs::Gauge& active;
  obs::Gauge& mb_moved;
  obs::Histogram& wait_s;
  obs::Histogram& service_s;
};

ServerMetrics& metrics() {
  auto& reg = obs::default_registry();
  static ServerMetrics m{
      reg.counter("server.submitted"),
      reg.counter("server.started"),
      reg.counter("server.rejected"),
      reg.counter("server.deferred"),
      reg.counter("server.completed"),
      reg.counter("server.interrupted"),
      reg.gauge("server.queue_depth"),
      reg.gauge("server.active"),
      reg.gauge("server.mb_moved"),
      reg.histogram("server.wait_s"),
      reg.histogram("server.service_s"),
  };
  return m;
}

/// Completion slop: a transfer is done when its remaining bytes are within
/// rounding noise of zero (mirrors net::SharedLink's sweep tolerance).
[[nodiscard]] double finish_tolerance_mb(double megabytes) {
  return 1e-12 * megabytes + 1e-15;
}

/// Bytes the server cannot represent as future service: one ulp of the
/// simulation clock times the current per-transfer rate. A residual below
/// this can never be integrated away — `clock_ + remaining/share` rounds
/// back to `clock_` — so the finish test must absorb it or drain_to spins
/// forever on a zero-length step. Grows with the clock (ulp(2^18 s) is
/// already 6e-11 s), which is why long-horizon runs hit it first.
[[nodiscard]] double clock_resolution_mb(double clock_s, double share_mbps) {
  const double ulp =
      std::nextafter(clock_s, std::numeric_limits<double>::infinity()) -
      clock_s;
  return share_mbps * ulp;
}

}  // namespace

ServerStats& ServerStats::operator+=(const ServerStats& other) {
  submitted += other.submitted;
  started += other.started;
  queued += other.queued;
  deferred += other.deferred;
  rejected += other.rejected;
  completed += other.completed;
  interrupted += other.interrupted;
  moved_mb += other.moved_mb;
  total_wait_s += other.total_wait_s;
  total_service_s += other.total_service_s;
  peak_queue_depth = std::max(peak_queue_depth, other.peak_queue_depth);
  peak_active = std::max(peak_active, other.peak_active);
  for (std::size_t k = 0; k < kTransferKindCount; ++k) {
    by_kind[k].submitted += other.by_kind[k].submitted;
    by_kind[k].started += other.by_kind[k].started;
    by_kind[k].rejected += other.by_kind[k].rejected;
    by_kind[k].total_wait_s += other.by_kind[k].total_wait_s;
  }
  return *this;
}

ServerConfigValidation validate(const ServerConfig& config) {
  ServerConfigValidation v;
  v.effective = config;
  if (config.policy == SchedulerPolicy::kFair && config.slots != 0) {
    v.warnings.push_back(
        "slots=" + std::to_string(config.slots) +
        " is ignored by the fair policy (processor sharing serves every "
        "admitted transfer); effective slots=0");
    v.effective.slots = 0;
  }
  if (config.recovery_queue_reserve > config.queue_limit) {
    v.warnings.push_back(
        "recovery_queue_reserve=" +
        std::to_string(config.recovery_queue_reserve) +
        " exceeds queue_limit=" + std::to_string(config.queue_limit) +
        "; clamped to the queue limit (checkpoints then always reject when "
        "slots are busy)");
    v.effective.recovery_queue_reserve = config.queue_limit;
  }
  if (config.policy != SchedulerPolicy::kUrgency &&
      config.urgency_horizon_s != kDefaultUrgencyHorizonS) {
    v.warnings.push_back(
        "urgency_horizon_s is only read by the urgency policy; the " +
        to_string(config.policy) + " policy ignores it");
  }
  if (config.stagger_window_s < 0.0) {
    v.warnings.push_back(
        "stagger_window_s < 0 disables the storm staggerer (same as 0)");
    v.effective.stagger_window_s = 0.0;
  }
  return v;
}

std::string to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kStarted:
      return "started";
    case SubmitStatus::kQueued:
      return "queued";
    case SubmitStatus::kDeferred:
      return "deferred";
    case SubmitStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

CheckpointServer::CheckpointServer(const ServerConfig& config)
    : config_(validate(config).effective),
      scheduler_(make_scheduler(config_.policy, config_.urgency_horizon_s)),
      admission_(scheduler_->unbounded_service() ? 0 : config_.slots,
                 config_.queue_limit, config_.recovery_queue_reserve),
      staggerer_(config_.stagger_window_s, config_.seed),
      backoff_(config_.retry_backoff_s, config_.retry_backoff_cap_s) {
  if (!(config_.capacity_mbps > 0.0) ||
      !std::isfinite(config_.capacity_mbps)) {
    throw std::invalid_argument("CheckpointServer: capacity must be > 0");
  }
  if (config_.slots == 0 && !scheduler_->unbounded_service()) {
    throw std::invalid_argument("CheckpointServer: need at least one slot");
  }
}

SubmitOutcome CheckpointServer::submit(const ServerTransferRequest& request,
                                       double now) {
  PROF_PHASE("server.admission");
  if (!(request.megabytes >= 0.0) || !std::isfinite(request.megabytes)) {
    throw std::invalid_argument("CheckpointServer::submit: bad size");
  }
  if (now < clock_) {
    throw std::invalid_argument("CheckpointServer::submit: time ran backwards");
  }
  drain_to(now);
  ++stats_.submitted;
  ++stats_.of(request.kind).submitted;
  metrics().submitted.add();

  // The staggerer sees every submission (it tracks inter-arrival spacing);
  // its defer only matters if the request is not rejected.
  const double defer = staggerer_.defer_s(now);

  const auto decision =
      admission_.decide(active_.size(), waiting_.size(), request.kind);
  if (decision == AdmissionDecision::kReject) {
    ++stats_.rejected;
    ++stats_.of(request.kind).rejected;
    metrics().rejected.add();
    if (config_.tracer != nullptr) {
      config_.tracer->record_instant("server.rejected", "server", now,
                                     request.job_id, request.megabytes,
                                     kServerTraceTrack);
    }
    if (config_.spans != nullptr) {
      config_.spans->record_rejected(
          request.job_id, static_cast<std::uint32_t>(config_.shard_index),
          static_cast<std::uint8_t>(request.kind), now);
    }
    return {SubmitStatus::kRejected, 0};
  }

  const TransferId id = ++next_id_;
  Pending pending;
  pending.sched.id = id;
  pending.sched.arrival_s = now;
  pending.sched.eligible_s = now + defer;
  pending.sched.predicted_remaining_s = request.predicted_remaining_s;
  pending.sched.kind = request.kind;
  pending.job_id = request.job_id;
  pending.megabytes = request.megabytes;

  if (decision == AdmissionDecision::kAdmit && defer <= 0.0) {
    start_service(std::move(pending));
    return {SubmitStatus::kStarted, id};
  }

  waiting_.push_back(std::move(pending));
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, waiting_.size());
  set_queue_gauges();
  if (defer > 0.0) {
    ++stats_.deferred;
    metrics().deferred.add();
    return {SubmitStatus::kDeferred, id};
  }
  ++stats_.queued;
  return {SubmitStatus::kQueued, id};
}

std::optional<double> CheckpointServer::next_event_s() const {
  if (!done_buffer_.empty()) return clock_;
  return next_internal_event();
}

std::vector<ServerCompletion> CheckpointServer::advance_to(double t) {
  // t == clock_ still needs a drain: a zero-size (or just-finished) transfer
  // completes at the current instant and must be collected, not spun on.
  if (t >= clock_) drain_to(t);
  std::vector<ServerCompletion> done = std::move(done_buffer_);
  done_buffer_.clear();
  return done;
}

ServerRemoval CheckpointServer::remove(TransferId id, double now) {
  if (now >= clock_) drain_to(now);
  ServerRemoval removal;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].id != id) continue;
    const Active& a = active_[i];
    removal.found = true;
    removal.was_active = true;
    removal.moved_mb = std::max(0.0, a.megabytes - a.remaining_mb);
    stats_.moved_mb += removal.moved_mb;
    ++stats_.interrupted;
    metrics().interrupted.add();
    metrics().mb_moved.add(removal.moved_mb);
    if (config_.tracer != nullptr) {
      config_.tracer->record_complete("server.transfer.interrupted", "server",
                                      a.start_s, clock_ - a.start_s, a.job_id,
                                      removal.moved_mb, kServerTraceTrack);
    }
    record_span(a, clock_, removal.moved_mb, /*completed=*/false);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    set_queue_gauges();
    promote_eligible();
    return removal;
  }
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    if (waiting_[i].sched.id != id) continue;
    removal.found = true;
    ++stats_.interrupted;
    metrics().interrupted.add();
    record_waiting_span(waiting_[i], clock_);
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
    set_queue_gauges();
    return removal;
  }
  return removal;
}

void CheckpointServer::drain_to(double t) {
  PROF_PHASE("server.drain");
  for (;;) {
    promote_eligible();
    const auto next = next_internal_event();
    if (!next.has_value() || *next > t) break;
    integrate_to(*next);
    // Collect every transfer that just finished. The threshold is the
    // larger of the byte tolerance and the clock's resolution: below the
    // latter the next completion instant is not representable, so the
    // transfer is done by construction (identical to the plain tolerance
    // at small clocks, where the resolution term is orders smaller).
    const double share_mbps =
        active_.empty()
            ? 0.0
            : config_.capacity_mbps / static_cast<double>(active_.size());
    const double done_mb = clock_resolution_mb(clock_, share_mbps);
    for (std::size_t i = 0; i < active_.size();) {
      Active& a = active_[i];
      if (a.remaining_mb <=
          std::max(finish_tolerance_mb(a.megabytes), done_mb)) {
        ServerCompletion done;
        done.id = a.id;
        done.job_id = a.job_id;
        done.arrival_s = a.arrival_s;
        done.start_s = a.start_s;
        done.finish_s = clock_;
        done.megabytes = a.megabytes;
        done.kind = a.kind;
        ++stats_.completed;
        stats_.moved_mb += a.megabytes;
        stats_.total_service_s += done.service_s();
        metrics().completed.add();
        metrics().mb_moved.add(a.megabytes);
        metrics().service_s.observe(done.service_s());
        if (config_.tracer != nullptr) {
          config_.tracer->record_complete("server.transfer", "server",
                                          done.start_s, done.service_s(),
                                          done.job_id, done.megabytes,
                                          kServerTraceTrack);
        }
        record_span(a, clock_, a.megabytes, /*completed=*/true);
        done_buffer_.push_back(done);
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    set_queue_gauges();
  }
  if (t > clock_) integrate_to(t);
}

void CheckpointServer::integrate_to(double t) {
  if (t <= clock_) return;
  if (!active_.empty()) {
    const double share =
        config_.capacity_mbps / static_cast<double>(active_.size());
    const double dt = t - clock_;
    for (auto& a : active_) a.remaining_mb -= share * dt;
  }
  clock_ = t;
}

void CheckpointServer::promote_eligible() {
  PROF_PHASE("server.schedule");
  const bool unbounded = scheduler_->unbounded_service();
  while (!waiting_.empty() &&
         (unbounded || active_.size() < config_.slots)) {
    // Scheduler sees only the transfers whose stagger defer has elapsed.
    std::vector<WaitingTransfer> eligible;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
      if (waiting_[i].sched.eligible_s <= clock_) {
        eligible.push_back(waiting_[i].sched);
        index.push_back(i);
      }
    }
    if (eligible.empty()) break;
    const std::size_t pick = index[scheduler_->pick_next(eligible, clock_)];
    if (config_.spans != nullptr) {
      // Every eligible transfer NOT picked just lost a scheduling decision:
      // from here on its wait is the policy's choice, not lack of capacity.
      // Stamping the first such instant is what lets the span layer split
      // queue wait into admission-queue vs scheduler-queue exactly. Pure
      // bookkeeping — no effect on behaviour when spans are disabled.
      for (const std::size_t i : index) {
        if (i == pick || waiting_[i].passed_over) continue;
        waiting_[i].passed_over = true;
        waiting_[i].first_pass_s = clock_;
      }
    }
    Pending pending = std::move(waiting_[pick]);
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(pick));
    start_service(std::move(pending));
  }
  set_queue_gauges();
}

std::optional<double> CheckpointServer::next_internal_event() const {
  double next = std::numeric_limits<double>::infinity();
  if (!active_.empty()) {
    const double share =
        config_.capacity_mbps / static_cast<double>(active_.size());
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& a : active_) {
      min_remaining = std::min(a.remaining_mb, min_remaining);
    }
    next = clock_ + std::max(0.0, min_remaining) / share;
  }
  // A deferred transfer becoming eligible only matters while a slot is (or
  // will then be) free; when every slot is busy the next state change is a
  // completion, already accounted above.
  if (!waiting_.empty() &&
      (scheduler_->unbounded_service() || active_.size() < config_.slots)) {
    for (const auto& w : waiting_) {
      if (w.sched.eligible_s > clock_) {
        next = std::min(next, w.sched.eligible_s);
      }
    }
  }
  if (!std::isfinite(next)) return std::nullopt;
  return next;
}

void CheckpointServer::start_service(Pending pending) {
  Active a;
  a.id = pending.sched.id;
  a.job_id = pending.job_id;
  a.megabytes = pending.megabytes;
  a.remaining_mb = pending.megabytes;
  a.arrival_s = pending.sched.arrival_s;
  a.eligible_s = pending.sched.eligible_s;
  a.start_s = clock_;
  a.passed_over = pending.passed_over;
  a.first_pass_s = pending.first_pass_s;
  a.kind = pending.sched.kind;
  ++stats_.started;
  stats_.total_wait_s += a.start_s - a.arrival_s;
  auto& cls = stats_.of(a.kind);
  ++cls.started;
  cls.total_wait_s += a.start_s - a.arrival_s;
  stats_.peak_active = std::max(stats_.peak_active, active_.size() + 1);
  metrics().started.add();
  metrics().wait_s.observe(a.start_s - a.arrival_s);
  active_.push_back(a);
  set_queue_gauges();
}

double CheckpointServer::pending_mb() const {
  double mb = 0.0;
  for (const auto& a : active_) mb += std::max(0.0, a.remaining_mb);
  for (const auto& w : waiting_) mb += w.megabytes;
  return mb;
}

void CheckpointServer::set_queue_gauges() {
  metrics().queue_depth.set(static_cast<double>(waiting_.size()));
  metrics().active.set(static_cast<double>(active_.size()));
}

void CheckpointServer::record_span(const Active& a, double end_s,
                                   double moved_mb, bool completed) const {
  if (config_.spans == nullptr) return;
  obs::TransferTimings t;
  t.transfer_id = a.id;
  t.job_id = a.job_id;
  t.shard = static_cast<std::uint32_t>(config_.shard_index);
  t.kind = static_cast<std::uint8_t>(a.kind);
  t.megabytes = a.megabytes;
  t.moved_mb = moved_mb;
  t.arrival_s = a.arrival_s;
  t.eligible_s = a.eligible_s;
  if (a.passed_over) t.first_pass_s = a.first_pass_s;
  t.start_s = a.start_s;
  t.end_s = end_s;
  // Solo baseline for the bytes that actually moved: what the pipe would
  // have taken with no one else on it. Dilation = observed service - solo.
  t.solo_service_s = moved_mb / config_.capacity_mbps;
  t.entered_service = true;
  t.completed = completed;
  config_.spans->record_transfer(t);
}

void CheckpointServer::record_waiting_span(const Pending& p,
                                           double end_s) const {
  if (config_.spans == nullptr) return;
  obs::TransferTimings t;
  t.transfer_id = p.sched.id;
  t.job_id = p.job_id;
  t.shard = static_cast<std::uint32_t>(config_.shard_index);
  t.kind = static_cast<std::uint8_t>(p.sched.kind);
  t.megabytes = p.megabytes;
  t.moved_mb = 0.0;
  t.arrival_s = p.sched.arrival_s;
  t.eligible_s = p.sched.eligible_s;
  if (p.passed_over) t.first_pass_s = p.first_pass_s;
  t.end_s = end_s;
  t.solo_service_s = 0.0;
  t.entered_service = false;
  t.completed = false;
  config_.spans->record_transfer(t);
}

}  // namespace harvest::server
