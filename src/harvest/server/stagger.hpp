// Storm avoidance: when many machines fit similar availability models they
// compute similar T_opt schedules and their checkpoint requests arrive at
// the server in near-simultaneous waves. The staggerer detects a request
// arriving hot on the heels of the previous one and defers its queue entry
// by a seeded uniform jitter inside the window, spreading the wave without
// materially delaying isolated requests. Deterministic per seed.
#pragma once

#include <cstdint>

#include "harvest/numerics/rng.hpp"

namespace harvest::server {

class StormStaggerer {
 public:
  /// `window_s` <= 0 disables staggering (defer_s always returns 0).
  StormStaggerer(double window_s, std::uint64_t seed);

  /// Defer to apply to a request arriving at `arrival_s`, given the history
  /// of previous arrivals this object has seen. Nonzero only when the
  /// request lands within `window_s` of the previous arrival. Call exactly
  /// once per submission (it advances the RNG and the arrival history).
  /// The span layer attributes [arrival, arrival + defer) to the `stagger`
  /// phase of the transfer's wait decomposition (obs/span.hpp).
  [[nodiscard]] double defer_s(double arrival_s);

  [[nodiscard]] double window_s() const { return window_s_; }
  /// Requests deferred so far.
  [[nodiscard]] std::uint64_t staggered_count() const { return staggered_; }

 private:
  double window_s_;
  numerics::Rng rng_;
  double last_arrival_s_ = -1.0;
  bool seen_any_ = false;
  std::uint64_t staggered_ = 0;
};

}  // namespace harvest::server
