// Pluggable service-order policies for the checkpoint server's waiting
// queue. All in-service transfers share the server's pipe TCP-fairly (that
// part is physics, shared with net::SharedLink's event sweep); the policy
// decides *which waiting transfer enters service next* when a slot frees,
// and whether the slot pool is bounded at all:
//
//   kFifo     — bounded slots, waiting transfers start in arrival order.
//               The classic checkpoint-server daemon: predictable, but a
//               checkpoint from a machine about to die waits behind
//               everyone else's.
//   kFair     — pure TCP-fair processor sharing: every admitted transfer
//               enters service immediately and the pipe is split evenly
//               (what an unmanaged shared link does on its own; the slot
//               bound is ignored). Semantics deliberately identical to
//               net::SharedLink::resolve so the two implementations check
//               each other.
//   kUrgency  — bounded slots, FIFO order EXCEPT that a transfer whose
//               submission-time *predicted remaining availability* (from
//               the fitted model) falls within an imminence horizon jumps
//               the queue, earliest predicted death (arrival + predicted
//               remaining) first — which is what Aupy/Robert/Vivien's
//               prediction-window results say the predictions should buy
//               you. The horizon matters: serving *everything* in
//               predicted-death order hands the flakiest machines
//               permanently fast service, their measured checkpoint cost
//               collapses, their planners checkpoint more and more often,
//               and the resulting traffic spiral loses more committed
//               work than plain FIFO. Restricting the jump to transfers
//               that were already racing death when they arrived keeps
//               the bulk of traffic in FIFO's stable feedback
//               equilibrium.
//
// Each pick_next decision doubles as the span layer's attribution
// boundary: an eligible transfer NOT picked while a slot was free has, from
// that instant on, a wait that is the policy's choice rather than lack of
// capacity — the server stamps that first losing decision and obs/span.hpp
// splits queue wait into admission-queue vs scheduler-queue there.
//
// Traffic classes (admission.hpp) cut across every policy: waiting
// RECOVERY transfers always enter service before waiting checkpoints —
// a job that cannot recover is stalled outright, while a job that cannot
// checkpoint merely risks losing uncommitted work. Recoveries are served
// FIFO among themselves (fast-tracking a recovery onto a machine predicted
// to die soon just starts a chunk the eviction then destroys, so the
// urgency jump applies to the checkpoint class only).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "harvest/server/admission.hpp"

namespace harvest::server {

enum class SchedulerPolicy { kFifo, kFair, kUrgency };

/// Default imminence horizon for the urgency policy (see above): predicted
/// deaths farther out than this are served in plain FIFO order.
inline constexpr double kDefaultUrgencyHorizonS = 300.0;

[[nodiscard]] std::string to_string(SchedulerPolicy policy);
[[nodiscard]] SchedulerPolicy policy_from_string(const std::string& name);

/// One waiting transfer as the scheduler sees it.
struct WaitingTransfer {
  std::uint64_t id = 0;        ///< server-assigned, monotone with submission
  double arrival_s = 0.0;      ///< submission time
  double eligible_s = 0.0;     ///< arrival + storm-avoidance defer
  /// Predicted remaining availability of the submitting machine at
  /// submission (+inf when the submitter has no model to ask).
  double predicted_remaining_s = std::numeric_limits<double>::infinity();
  /// Traffic class: waiting recoveries outrank waiting checkpoints under
  /// every policy (see the header comment).
  TransferKind kind = TransferKind::kCheckpoint;
};

class TransferScheduler {
 public:
  virtual ~TransferScheduler() = default;

  /// Index into `waiting` of the transfer that should enter service next at
  /// simulated time `now`. Only called with a non-empty vector whose
  /// entries are all eligible (eligible_s <= now). Ties break on submission
  /// id, so any policy is deterministic.
  [[nodiscard]] virtual std::size_t pick_next(
      const std::vector<WaitingTransfer>& waiting, double now) const = 0;

  /// True for policies that ignore the slot bound (every admitted transfer
  /// is served immediately, processor-sharing style).
  [[nodiscard]] virtual bool unbounded_service() const { return false; }

  [[nodiscard]] virtual SchedulerPolicy policy() const = 0;
};

/// `urgency_horizon_s` configures the urgency policy's imminence horizon
/// (ignored by the other policies); must not be negative or NaN.
[[nodiscard]] std::unique_ptr<TransferScheduler> make_scheduler(
    SchedulerPolicy policy,
    double urgency_horizon_s = kDefaultUrgencyHorizonS);

}  // namespace harvest::server
