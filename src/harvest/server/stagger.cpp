#include "harvest/server/stagger.hpp"

namespace harvest::server {

StormStaggerer::StormStaggerer(double window_s, std::uint64_t seed)
    : window_s_(window_s), rng_(seed) {}

double StormStaggerer::defer_s(double arrival_s) {
  const bool near_previous =
      seen_any_ && (arrival_s - last_arrival_s_) < window_s_;
  seen_any_ = true;
  last_arrival_s_ = arrival_s;
  if (window_s_ <= 0.0 || !near_previous) return 0.0;
  ++staggered_;
  return rng_.uniform(0.0, window_s_);
}

}  // namespace harvest::server
