#include "harvest/server/cli_options.hpp"

#include <cstring>
#include <stdexcept>

namespace harvest::server {
namespace {

/// Strip `--<name> <value>` / `--<name>=<value>` from argv; nullopt when
/// the flag is absent. Throws when the flag is present without a value.
std::optional<std::string> strip_value_flag(int& argc, char** argv,
                                            const char* name) {
  const std::string bare = std::string("--") + name;
  const std::string eq = bare + "=";
  std::optional<std::string> value;
  int write = 1;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) {
      if (i + 1 >= argc) {
        throw std::invalid_argument(bare + " needs a value");
      }
      value = argv[++i];
    } else if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0) {
      value = argv[i] + eq.size();
    } else {
      argv[write++] = argv[i];
    }
  }
  argc = write;
  return value;
}

std::size_t parse_count(const std::string& flag, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + flag + ": not a count: " + value);
  }
  if (pos != value.size()) {
    throw std::invalid_argument("--" + flag + ": not a count: " + value);
  }
  return static_cast<std::size_t>(n);
}

double parse_nonneg(const std::string& flag, const std::string& value) {
  std::size_t pos = 0;
  double x = 0.0;
  try {
    x = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + flag + ": not a number: " + value);
  }
  if (pos != value.size() || !(x >= 0.0)) {
    throw std::invalid_argument("--" + flag +
                                ": expected a number >= 0, got " + value);
  }
  return x;
}

}  // namespace

CliOptions CliOptions::parse(int& argc, char** argv) {
  CliOptions o;
  if (const auto v = strip_value_flag(argc, argv, "server-policy")) {
    o.policy = policy_from_string(*v);
  }
  if (const auto v = strip_value_flag(argc, argv, "server-slots")) {
    o.slots = parse_count("server-slots", *v);
  }
  if (const auto v = strip_value_flag(argc, argv, "server-capacity")) {
    const double x = parse_nonneg("server-capacity", *v);
    if (!(x > 0.0)) {
      throw std::invalid_argument("--server-capacity must be > 0");
    }
    o.capacity_mbps = x;
  }
  if (const auto v = strip_value_flag(argc, argv, "server-stagger")) {
    o.stagger_window_s = parse_nonneg("server-stagger", *v);
  }
  if (const auto v =
          strip_value_flag(argc, argv, "server-urgency-horizon")) {
    o.urgency_horizon_s = parse_nonneg("server-urgency-horizon", *v);
  }
  if (const auto v = strip_value_flag(argc, argv, "server-queue-limit")) {
    o.queue_limit = parse_count("server-queue-limit", *v);
  }
  if (const auto v =
          strip_value_flag(argc, argv, "server-recovery-reserve")) {
    o.recovery_reserve = parse_count("server-recovery-reserve", *v);
  }
  if (const auto v = strip_value_flag(argc, argv, "fleet-shards")) {
    const std::size_t n = parse_count("fleet-shards", *v);
    if (n == 0 || n > kMaxFleetShards) {
      throw std::invalid_argument(
          "--fleet-shards must be in [1, " +
          std::to_string(kMaxFleetShards) + "]");
    }
    o.fleet_shards = n;
  }
  if (const auto v = strip_value_flag(argc, argv, "fleet-routing")) {
    o.fleet_routing = routing_from_string(*v);
  }
  if (const auto v = strip_value_flag(argc, argv, "engine")) {
    if (*v != "auto" && *v != "uncontended" && *v != "contended" &&
        *v != "megapool") {
      throw std::invalid_argument(
          "--engine must be auto|uncontended|contended|megapool, got " + *v);
    }
    o.engine = *v;
  }
  if (const auto v = strip_value_flag(argc, argv, "megapool-threads")) {
    o.megapool_threads = parse_count("megapool-threads", *v);
  }
  if (const auto v = strip_value_flag(argc, argv, "megapool-shards")) {
    o.megapool_shards = parse_count("megapool-shards", *v);
  }
  return o;
}

std::string CliOptions::help_text() {
  return
      "server flags (checkpoint server; any enables contended mode):\n"
      "  --server-policy <fifo|fair|urgency>\n"
      "  --server-slots <n>       concurrent-transfer slots (0 = unbounded)\n"
      "  --server-capacity <MB/s>\n"
      "  --server-stagger <s>     storm-avoidance jitter window\n"
      "  --server-urgency-horizon <s>  imminence horizon (urgency policy)\n"
      "  --server-queue-limit <n> waiting transfers beyond which admission\n"
      "                           rejects\n"
      "  --server-recovery-reserve <n>  queue slots held for recovery\n"
      "                           traffic (checkpoints reject earlier)\n"
      "fleet flags (shard the server K ways):\n"
      "  --fleet-shards <k>       independent checkpoint servers (default 1)\n"
      "  --fleet-routing <static|hash|least_loaded>\n"
      "engine flags (which discrete-event core runs the pool):\n"
      "  --engine <auto|uncontended|contended|megapool>\n"
      "  --megapool-threads <n>   worker threads for the megapool shard\n"
      "                           fan-out (0 = hardware, 1 = inline)\n"
      "  --megapool-shards <k>    machine-table shards (0 = auto)\n";
}

bool CliOptions::any() const {
  return policy.has_value() || slots.has_value() ||
         capacity_mbps.has_value() || stagger_window_s.has_value() ||
         urgency_horizon_s.has_value() || queue_limit.has_value() ||
         recovery_reserve.has_value() || fleet_shards.has_value() ||
         fleet_routing.has_value();
}

ServerConfig CliOptions::server_config(ServerConfig base) const {
  if (policy) base.policy = *policy;
  if (slots) base.slots = *slots;
  if (capacity_mbps) base.capacity_mbps = *capacity_mbps;
  if (stagger_window_s) base.stagger_window_s = *stagger_window_s;
  if (urgency_horizon_s) base.urgency_horizon_s = *urgency_horizon_s;
  if (queue_limit) base.queue_limit = *queue_limit;
  if (recovery_reserve) base.recovery_queue_reserve = *recovery_reserve;
  return base;
}

FleetConfig CliOptions::fleet_config(ServerConfig base) const {
  FleetConfig fc;
  fc.server = server_config(base);
  if (fleet_shards) fc.shards = *fleet_shards;
  if (fleet_routing) fc.routing = *fleet_routing;
  return fc;
}

std::vector<std::string> CliOptions::warnings() const {
  return fleet_config().validate().warnings;
}

}  // namespace harvest::server
