// Admission control for the checkpoint server: every transfer request is
// admitted to service, parked in the bounded waiting queue, or rejected
// outright when the queue is full. Rejected (and eviction-interrupted)
// clients retry with exponential backoff, so an overloaded server sheds
// synchronized load instead of building an unbounded backlog — the classic
// defense against the checkpoint storms the paper's conclusion warns about.
//
// Requests carry a traffic class (TransferKind). Recovery traffic outranks
// checkpoint traffic under pressure: a job that cannot recover is stalled
// outright, while a job that cannot checkpoint merely risks losing work it
// has not committed yet. The controller can reserve queue headroom for
// recoveries (checkpoints start rejecting while recoveries still queue);
// the schedulers serve waiting recoveries first (transfer_scheduler.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace harvest::server {

/// Traffic class of a transfer request. Recovery = a job pulling its last
/// checkpoint so it can resume at all; checkpoint = a job persisting new
/// work on its periodic schedule; proactive = a checkpoint taken early on a
/// failure-prediction alert (harvest/predict). Recovery outranks both
/// checkpoint classes at equal slot pressure; proactive shares checkpoint's
/// admission treatment but is accounted as its own class so prediction's
/// extra traffic is visible in per-class stats and span attribution.
enum class TransferKind : std::uint8_t {
  kCheckpoint = 0,
  kRecovery = 1,
  kProactive = 2,
};

inline constexpr std::size_t kTransferKindCount = 3;

[[nodiscard]] std::string to_string(TransferKind kind);

enum class AdmissionDecision {
  kAdmit,   ///< a service slot is free: start transferring now
  kQueue,   ///< all slots busy but the queue has room: wait
  kReject,  ///< queue full: client must back off and retry
};

[[nodiscard]] std::string to_string(AdmissionDecision decision);

/// Pure admission policy: a function of the server's occupancy, limits, and
/// the request's traffic class. Kept separate from CheckpointServer so
/// tests (and future policies — per-job quotas, bytes-in-flight caps) can
/// exercise it in isolation.
class AdmissionController {
 public:
  /// `slots` == 0 means unbounded service (processor-sharing mode):
  /// everything admits. `queue_limit` bounds the number of *waiting*
  /// transfers; 0 disables queueing entirely (busy server rejects).
  /// `recovery_reserve` carves the last slots of the queue out for
  /// recovery traffic: checkpoint requests reject once fewer than
  /// `recovery_reserve` queue slots remain, recovery requests can use the
  /// whole queue. 0 (the default) treats both classes identically.
  AdmissionController(std::size_t slots, std::size_t queue_limit,
                      std::size_t recovery_reserve = 0);

  [[nodiscard]] AdmissionDecision decide(
      std::size_t active_count, std::size_t queued_count,
      TransferKind kind = TransferKind::kCheckpoint) const;

  [[nodiscard]] std::size_t slots() const { return slots_; }
  [[nodiscard]] std::size_t queue_limit() const { return queue_limit_; }
  [[nodiscard]] std::size_t recovery_reserve() const {
    return recovery_reserve_;
  }

 private:
  std::size_t slots_;
  std::size_t queue_limit_;
  std::size_t recovery_reserve_;
};

/// Truncated binary exponential backoff: delay(attempt) = base * 2^attempt,
/// capped. Attempt 0 is the first retry. Deterministic (the storm staggerer
/// supplies the randomness in this subsystem).
class ExponentialBackoff {
 public:
  ExponentialBackoff(double base_s, double cap_s);

  [[nodiscard]] double delay_s(std::uint32_t attempt) const;
  [[nodiscard]] double base_s() const { return base_s_; }
  [[nodiscard]] double cap_s() const { return cap_s_; }

 private:
  double base_s_;
  double cap_s_;
};

}  // namespace harvest::server
