// The contended checkpoint server the paper's conclusion asks for: every
// recovery and checkpoint transfer in the pool traverses ONE shared pipe
// behind a bounded concurrent-transfer slot pool. The single-job model
// charges each transfer an independent BandwidthModel sample; this server
// makes pool-wide contention first-class instead:
//
//   * in-service transfers share the pipe TCP-fairly (the same
//     processor-sharing semantics as net::SharedLink::resolve, computed
//     incrementally as a discrete-event process so a simulation can
//     interleave it with everything else);
//   * an AdmissionController admits, queues, or rejects each request
//     against the slot pool and a bounded waiting queue, with truncated
//     exponential backoff for clients that get rejected or interrupted;
//   * a pluggable TransferScheduler (fifo | fair | urgency) picks which
//     waiting transfer enters service when a slot frees;
//   * a StormStaggerer jitters near-simultaneous requests across a window
//     so synchronized checkpoint waves don't all collide.
//
// The server is a passive discrete-event component: callers drive simulated
// time through submit / advance_to / remove and poll next_event_s for the
// earliest internal event (a completion or a deferred transfer becoming
// eligible). Everything is deterministic given the config seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harvest/obs/span.hpp"
#include "harvest/obs/tracer.hpp"
#include "harvest/server/admission.hpp"
#include "harvest/server/stagger.hpp"
#include "harvest/server/transfer_scheduler.hpp"

namespace harvest::server {

/// Chrome-trace track (tid) the server's per-transfer events render on,
/// chosen far above any plausible machine index so the server timeline
/// never collides with the pool's per-machine tracks.
inline constexpr std::uint64_t kServerTraceTrack = 1u << 20;

struct ServerConfig {
  /// Capacity of the server's network pipe, shared by in-service transfers.
  double capacity_mbps = 12.0;
  /// Concurrent-transfer slot pool (ignored by the fair policy, which
  /// serves every admitted transfer processor-sharing style).
  std::size_t slots = 4;
  /// Waiting transfers beyond which admission rejects.
  std::size_t queue_limit = 64;
  /// Queue headroom reserved for recovery traffic: checkpoint submissions
  /// reject once fewer than this many queue slots remain free, recoveries
  /// can fill the whole queue. 0 treats both classes identically at
  /// admission (recoveries still outrank checkpoints in service order).
  std::size_t recovery_queue_reserve = 0;
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  /// Urgency policy only: a transfer may jump the FIFO order only when its
  /// predicted remaining availability at submission is within this
  /// horizon. 0 degenerates to FIFO, +inf to pure
  /// earliest-predicted-death-first.
  double urgency_horizon_s = kDefaultUrgencyHorizonS;
  /// Storm-avoidance window; 0 disables the staggerer.
  double stagger_window_s = 0.0;
  /// Truncated exponential backoff for rejected / interrupted clients.
  double retry_backoff_s = 30.0;
  double retry_backoff_cap_s = 1920.0;
  /// Seeds the staggerer's jitter stream. NOTE: when the server runs inside
  /// a fleet or a pool simulation, this field and `tracer` are per-shard
  /// runtime state derived in exactly one place —
  /// FleetConfig::materialize() (fleet.hpp) — never taken from here.
  std::uint64_t seed = 0x5eedULL;
  /// Optional per-transfer timeline (category "server", track
  /// kServerTraceTrack): one complete event per finished or interrupted
  /// transfer whose value is the megabytes that actually moved. Runtime
  /// state like `seed`; see FleetConfig::materialize().
  obs::EventTracer* tracer = nullptr;
  /// Optional causal span sink: every finished / interrupted / rejected
  /// transfer reports its full lifecycle (arrival → stagger-eligible →
  /// first losing scheduling decision → service start → end) so the store
  /// can exactly partition the observed wait into named phases. Recording
  /// is pure bookkeeping — no RNG, no decisions — so attaching a store
  /// never changes simulation results. Runtime state like `seed`; see
  /// FleetConfig::materialize().
  obs::SpanStore* spans = nullptr;
  /// Index of this server within its fleet, stamped onto spans so the
  /// attribution report can break waits down per shard. Runtime state set
  /// by FleetConfig::materialize(); 0 for a standalone server.
  std::size_t shard_index = 0;
};

/// Self-validation: returns the configuration the server will actually
/// enforce plus a warning per adjusted knob — e.g. `slots` is ignored by
/// the fair policy (processor sharing serves every admitted transfer), and
/// `recovery_queue_reserve` is clamped to `queue_limit`. Hard errors
/// (non-positive capacity, zero slots under a bounded policy) still throw
/// from the CheckpointServer constructor; validate() only reports the
/// silent adjustments.
struct ServerConfigValidation {
  ServerConfig effective;
  std::vector<std::string> warnings;
};
[[nodiscard]] ServerConfigValidation validate(const ServerConfig& config);

using TransferId = std::uint64_t;

struct ServerTransferRequest {
  std::uint64_t job_id = 0;
  double megabytes = 0.0;
  /// Urgency hint: the fitted model's predicted remaining availability of
  /// the submitting machine (+inf when unknown). Smaller = more urgent.
  double predicted_remaining_s =
      std::numeric_limits<double>::infinity();
  /// Traffic class: recoveries outrank checkpoints under slot pressure
  /// (admission headroom + service order; see admission.hpp).
  TransferKind kind = TransferKind::kCheckpoint;
  /// Index of the submitting machine; the fleet's rack-affine (`static`)
  /// routing shards on it. A standalone server ignores it.
  std::size_t machine_index = 0;
};

enum class SubmitStatus { kStarted, kQueued, kDeferred, kRejected };

[[nodiscard]] std::string to_string(SubmitStatus status);

struct SubmitOutcome {
  SubmitStatus status = SubmitStatus::kRejected;
  TransferId id = 0;  ///< valid unless rejected
};

struct ServerCompletion {
  TransferId id = 0;
  std::uint64_t job_id = 0;
  double arrival_s = 0.0;  ///< submission time
  double start_s = 0.0;    ///< service entry (after queueing / stagger)
  double finish_s = 0.0;
  double megabytes = 0.0;
  TransferKind kind = TransferKind::kCheckpoint;

  [[nodiscard]] double wait_s() const { return start_s - arrival_s; }
  [[nodiscard]] double service_s() const { return finish_s - start_s; }
};

struct ServerRemoval {
  bool found = false;
  bool was_active = false;  ///< in service (vs still waiting) when removed
  double moved_mb = 0.0;    ///< bytes on the wire before the interruption
};

/// Per-traffic-class slice of the server's ledger (indexed by
/// TransferKind).
struct ClassStats {
  std::uint64_t submitted = 0;
  std::uint64_t started = 0;  ///< entered service
  std::uint64_t rejected = 0;
  double total_wait_s = 0.0;  ///< over transfers that entered service

  [[nodiscard]] double mean_wait_s() const {
    return started > 0 ? total_wait_s / static_cast<double>(started) : 0.0;
  }
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t started = 0;   ///< entered service
  std::uint64_t queued = 0;    ///< parked for a slot at submission
  std::uint64_t deferred = 0;  ///< parked by the storm staggerer
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t interrupted = 0;  ///< removed (eviction) before finishing
  double moved_mb = 0.0;          ///< completed + pro-rated interrupted bytes
  double total_wait_s = 0.0;      ///< over transfers that entered service
  double total_service_s = 0.0;   ///< over completed transfers
  std::size_t peak_queue_depth = 0;
  std::size_t peak_active = 0;
  /// Traffic-class breakdown, indexed by TransferKind (0 = checkpoint,
  /// 1 = recovery, 2 = proactive).
  std::array<ClassStats, kTransferKindCount> by_kind{};

  [[nodiscard]] double mean_wait_s() const {
    return started > 0 ? total_wait_s / static_cast<double>(started) : 0.0;
  }
  [[nodiscard]] double mean_service_s() const {
    return completed > 0 ? total_service_s / static_cast<double>(completed)
                         : 0.0;
  }
  [[nodiscard]] const ClassStats& of(TransferKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] ClassStats& of(TransferKind kind) {
    return by_kind[static_cast<std::size_t>(kind)];
  }

  /// Fleet aggregation: counters and totals add, peaks take the max (the
  /// shards are independent servers, so fleet-wide concurrent peaks are
  /// not knowable from per-shard peaks; max is the honest lower bound).
  ServerStats& operator+=(const ServerStats& other);
};

class CheckpointServer {
 public:
  explicit CheckpointServer(const ServerConfig& config);

  /// Submit a transfer at simulated time `now` (must be >= every previous
  /// time this server has seen). Completions that fall due are buffered and
  /// delivered by the next advance_to call.
  SubmitOutcome submit(const ServerTransferRequest& request, double now);

  /// Earliest time at which the server has something to do: a buffered or
  /// upcoming completion, or a deferred transfer becoming eligible for a
  /// free slot. nullopt when the server is idle.
  [[nodiscard]] std::optional<double> next_event_s() const;

  /// Advance simulated time to `t`, returning every transfer that finished
  /// at or before `t` (in finish order). Monotone; `t` earlier than the
  /// current clock is a no-op that drains the buffer.
  std::vector<ServerCompletion> advance_to(double t);

  /// Eviction: drop the transfer wherever it is (service or queue) at time
  /// `now`. The pro-rated bytes already transferred are reported and
  /// counted as moved.
  ServerRemoval remove(TransferId id, double now);

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] const ExponentialBackoff& backoff() const { return backoff_; }
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] std::size_t queued_count() const { return waiting_.size(); }
  /// Megabytes still to serve: remaining bytes of in-service transfers (as
  /// of this server's clock) plus full sizes of waiting ones. The fleet's
  /// least-loaded router keys on this.
  [[nodiscard]] double pending_mb() const;
  [[nodiscard]] double clock_s() const { return clock_; }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t staggered_count() const {
    return staggerer_.staggered_count();
  }

 private:
  struct Active {
    TransferId id = 0;
    std::uint64_t job_id = 0;
    double megabytes = 0.0;
    double remaining_mb = 0.0;
    double arrival_s = 0.0;
    double eligible_s = 0.0;  ///< arrival + stagger defer
    double start_s = 0.0;
    /// First losing scheduling decision (see Pending); carried through so
    /// the completion span can split queue wait into capacity vs policy.
    bool passed_over = false;
    double first_pass_s = 0.0;
    TransferKind kind = TransferKind::kCheckpoint;
  };
  struct Pending {
    WaitingTransfer sched;  ///< what the scheduler sees
    std::uint64_t job_id = 0;
    double megabytes = 0.0;
    /// Set the first time a slot was free, this transfer was eligible, and
    /// the scheduler picked a different one — the boundary between
    /// admission-queue wait (no capacity) and scheduler-queue wait (policy
    /// chose someone else) in the span decomposition.
    bool passed_over = false;
    double first_pass_s = 0.0;
  };

  /// Drain internal events (completions, promotions) up to `t` and leave
  /// the clock there. Completions accumulate in done_buffer_.
  void drain_to(double t);
  /// Let active transfers progress from clock_ to `t` (no event between).
  void integrate_to(double t);
  /// Move eligible waiting transfers into free slots at the current clock.
  void promote_eligible();
  /// Earliest internal event strictly ahead of the clock (ignoring the
  /// done buffer).
  [[nodiscard]] std::optional<double> next_internal_event() const;
  void start_service(Pending pending);
  void set_queue_gauges();
  /// Feed one finished or removed transfer to the configured span store
  /// (no-op without one). `end_s` is the finish or removal instant.
  void record_span(const Active& a, double end_s, double moved_mb,
                   bool completed) const;
  void record_waiting_span(const Pending& p, double end_s) const;

  ServerConfig config_;
  std::unique_ptr<TransferScheduler> scheduler_;
  AdmissionController admission_;
  StormStaggerer staggerer_;
  ExponentialBackoff backoff_;

  double clock_ = 0.0;
  TransferId next_id_ = 0;
  std::vector<Active> active_;
  std::vector<Pending> waiting_;
  std::vector<ServerCompletion> done_buffer_;
  ServerStats stats_;
};

}  // namespace harvest::server
