// Shared command-line surface for the checkpoint server / fleet knobs.
// Every binary that exposes server options (examples/harvestctl,
// bench/server_contention, bench/fleet_sharding) parses them through this
// one helper, so flag names, value validation, help text, and defaulting
// cannot drift between front ends.
//
// Usage:
//   auto opts = server::CliOptions::parse(argc, argv);  // strips the flags
//   if (opts.any()) { cfg.fleet = opts.fleet_config(); }
//   for (const auto& w : opts.warnings()) fprintf(stderr, "%s\n", w);
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "harvest/server/fleet.hpp"

namespace harvest::server {

struct CliOptions {
  // Per-server knobs (--server-*). Unset fields keep the ServerConfig /
  // FleetConfig defaults, so "any flag present" is detectable via any().
  std::optional<SchedulerPolicy> policy;
  std::optional<std::size_t> slots;
  std::optional<double> capacity_mbps;
  std::optional<double> stagger_window_s;
  std::optional<double> urgency_horizon_s;
  std::optional<std::size_t> queue_limit;
  std::optional<std::size_t> recovery_reserve;
  // Fleet knobs (--fleet-*).
  std::optional<std::size_t> fleet_shards;
  std::optional<RoutingPolicy> fleet_routing;
  // Engine knobs (--engine, --megapool-*). Parsed here so every front end
  // shares one spelling, but NOT part of any(): choosing an engine does not
  // by itself enable contended mode. The string is validated at parse time
  // ("auto", "uncontended", "contended", "megapool"); front ends map it
  // onto condor::PoolEngine (this module sits below condor and cannot).
  std::optional<std::string> engine;
  std::optional<std::size_t> megapool_threads;
  std::optional<std::size_t> megapool_shards;

  /// Strip every recognised `--flag value` / `--flag=value` pair from argv
  /// (same in-place compaction idiom as the callers' other flags) and
  /// return the parsed options. Throws std::invalid_argument on a
  /// malformed value or a flag missing its value.
  static CliOptions parse(int& argc, char** argv);

  /// The uniform help block describing every flag parse() understands,
  /// ready to embed in a usage() message.
  static std::string help_text();

  /// True when at least one server/fleet flag was given — front ends use
  /// this as the "enable contended mode" switch.
  [[nodiscard]] bool any() const;

  /// `base` with the set per-server fields applied.
  [[nodiscard]] ServerConfig server_config(ServerConfig base = {}) const;

  /// Full fleet view: server_config(base) plus shard count / routing.
  [[nodiscard]] FleetConfig fleet_config(ServerConfig base = {}) const;

  /// Validation warnings for the resulting fleet_config() — what the
  /// engine will silently adjust (e.g. fair policy ignoring slots). Front
  /// ends print these so the adjustment is not silent.
  [[nodiscard]] std::vector<std::string> warnings() const;
};

}  // namespace harvest::server
