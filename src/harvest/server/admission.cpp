#include "harvest/server/admission.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace harvest::server {

std::string to_string(TransferKind kind) {
  switch (kind) {
    case TransferKind::kCheckpoint:
      return "checkpoint";
    case TransferKind::kRecovery:
      return "recovery";
    case TransferKind::kProactive:
      return "proactive";
  }
  return "unknown";
}

std::string to_string(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kQueue:
      return "queue";
    case AdmissionDecision::kReject:
      return "reject";
  }
  return "unknown";
}

AdmissionController::AdmissionController(std::size_t slots,
                                         std::size_t queue_limit,
                                         std::size_t recovery_reserve)
    : slots_(slots),
      queue_limit_(queue_limit),
      recovery_reserve_(std::min(recovery_reserve, queue_limit)) {}

AdmissionDecision AdmissionController::decide(std::size_t active_count,
                                              std::size_t queued_count,
                                              TransferKind kind) const {
  if (slots_ == 0 || active_count < slots_) return AdmissionDecision::kAdmit;
  const std::size_t limit = kind == TransferKind::kRecovery
                                ? queue_limit_
                                : queue_limit_ - recovery_reserve_;
  if (queued_count < limit) return AdmissionDecision::kQueue;
  return AdmissionDecision::kReject;
}

ExponentialBackoff::ExponentialBackoff(double base_s, double cap_s)
    : base_s_(base_s), cap_s_(cap_s) {
  if (!(base_s > 0.0) || !std::isfinite(base_s)) {
    throw std::invalid_argument("ExponentialBackoff: base must be > 0");
  }
  if (!(cap_s >= base_s)) {
    throw std::invalid_argument("ExponentialBackoff: cap must be >= base");
  }
}

double ExponentialBackoff::delay_s(std::uint32_t attempt) const {
  // 2^attempt overflows double long after the cap kicks in; clamp the
  // exponent so the multiply itself stays finite.
  const auto exponent = std::min<std::uint32_t>(attempt, 63);
  const double raw = base_s_ * std::ldexp(1.0, static_cast<int>(exponent));
  return std::min(raw, cap_s_);
}

}  // namespace harvest::server
