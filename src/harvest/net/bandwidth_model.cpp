#include "harvest/net/bandwidth_model.hpp"

#include <cmath>
#include <stdexcept>

namespace harvest::net {

BandwidthModel::BandwidthModel(double mean_rate_mbps, double jitter_sigma)
    : mean_rate_(mean_rate_mbps), sigma_(jitter_sigma) {
  if (!(mean_rate_mbps > 0.0) || !std::isfinite(mean_rate_mbps)) {
    throw std::invalid_argument("BandwidthModel: mean rate must be > 0");
  }
  if (!(jitter_sigma >= 0.0) || !std::isfinite(jitter_sigma)) {
    throw std::invalid_argument("BandwidthModel: jitter sigma must be >= 0");
  }
}

double BandwidthModel::expected_transfer_seconds(double megabytes) const {
  if (!(megabytes >= 0.0)) {
    throw std::invalid_argument("expected_transfer_seconds: megabytes >= 0");
  }
  return megabytes / mean_rate_;
}

double BandwidthModel::sample_transfer_seconds(double megabytes,
                                               numerics::Rng& rng) const {
  if (!(megabytes >= 0.0)) {
    throw std::invalid_argument("sample_transfer_seconds: megabytes >= 0");
  }
  if (sigma_ == 0.0) return megabytes / mean_rate_;
  // Mean-one lognormal multiplier on the transfer TIME (mu = -sigma^2/2), so
  // the expected duration matches expected_transfer_seconds.
  const double multiplier = rng.lognormal(-0.5 * sigma_ * sigma_, sigma_);
  return megabytes / mean_rate_ * multiplier;
}

BandwidthModel BandwidthModel::campus() {
  // 500 MB / (4.545 MB/s) ≈ 110 s; modest LAN variability.
  return BandwidthModel(500.0 / 110.0, 0.15);
}

BandwidthModel BandwidthModel::wan() {
  // 500 MB / (1.053 MB/s) ≈ 475 s; wide-area variability is heavier.
  return BandwidthModel(500.0 / 475.0, 0.35);
}

}  // namespace harvest::net
