#include "harvest/net/shared_link.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "harvest/obs/metrics.hpp"

namespace harvest::net {

SharedLink::SharedLink(double capacity_mbps) : capacity_(capacity_mbps) {
  if (!(capacity_mbps > 0.0) || !std::isfinite(capacity_mbps)) {
    throw std::invalid_argument("SharedLink: capacity must be > 0");
  }
}

std::vector<TransferOutcome> SharedLink::resolve(
    std::vector<TransferRequest> requests) const {
  for (const auto& r : requests) {
    // Zero-size transfers are legal: the sweep completes them at arrival
    // (dt = 0), which is the natural limit of megabytes → 0.
    if (!(r.arrival_s >= 0.0) || !(r.megabytes >= 0.0)) {
      throw std::invalid_argument(
          "SharedLink::resolve: arrivals >= 0, sizes >= 0");
    }
  }
  const std::size_t n = requests.size();
  std::vector<TransferOutcome> outcomes(n);

  static auto& resolves =
      obs::default_registry().counter("net.shared_link.resolves");
  static auto& transfers =
      obs::default_registry().counter("net.shared_link.transfers");
  static auto& mb_requested =
      obs::default_registry().gauge("net.shared_link.mb_requested");
  resolves.add();
  transfers.add(n);
  double total_mb = 0.0;
  for (const auto& r : requests) total_mb += r.megabytes;
  mb_requested.add(total_mb);

  // Event sweep: between consecutive events (an arrival or a completion)
  // the active set is fixed, so each active transfer drains at
  // capacity / |active|.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].arrival_s < requests[b].arrival_s;
  });

  std::vector<double> remaining(n, 0.0);
  std::vector<bool> active(n, false);
  std::size_t next_arrival = 0;
  std::size_t active_count = 0;
  double now = n > 0 ? requests[order[0]].arrival_s : 0.0;

  while (next_arrival < n || active_count > 0) {
    // Admit arrivals at `now`.
    while (next_arrival < n &&
           requests[order[next_arrival]].arrival_s <= now) {
      const std::size_t id = order[next_arrival];
      remaining[id] = requests[id].megabytes;
      active[id] = true;
      outcomes[id].start_s = requests[id].arrival_s;
      ++active_count;
      ++next_arrival;
    }
    if (active_count == 0) {
      now = requests[order[next_arrival]].arrival_s;
      continue;
    }
    const double share = capacity_ / static_cast<double>(active_count);
    // Time to the earliest completion among active transfers.
    double min_drain = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) min_drain = std::min(min_drain, remaining[i] / share);
    }
    // Time to the next arrival.
    const double until_arrival =
        (next_arrival < n)
            ? requests[order[next_arrival]].arrival_s - now
            : std::numeric_limits<double>::infinity();
    const double dt = std::min(min_drain, until_arrival);
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      remaining[i] -= share * dt;
      if (remaining[i] <= 1e-12 * requests[i].megabytes) {
        active[i] = false;
        --active_count;
        outcomes[i].finish_s = now + dt;
      }
    }
    now += dt;
  }

  // Contention factor per transfer: duration relative to an unshared link
  // (1.0 = never shared). The histogram's p99 is the headline number for
  // the paper's "network collisions lengthen checkpoints" future-work
  // claim.
  static auto& slowdown = obs::default_registry().histogram(
      "net.shared_link.slowdown",
      obs::Histogram::exponential_bounds(1.0, 64.0, 13));
  for (std::size_t i = 0; i < n; ++i) {
    const double solo_s = requests[i].megabytes / capacity_;
    if (solo_s > 0.0) slowdown.observe(outcomes[i].duration() / solo_s);
  }
  return outcomes;
}

}  // namespace harvest::net
