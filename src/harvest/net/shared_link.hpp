// Processor-sharing model of a shared network link. The paper's conclusion
// motivates this: "for a parallel job, where multiple jobs may be
// checkpointing simultaneously, the network load savings are likely to
// improve application efficiency since network collisions will lengthen the
// amount of time necessary for a checkpoint"; modeling that interaction is
// flagged as future work. The ablation bench uses this module to quantify
// the effect.
//
// Semantics: the link has a fixed capacity (MB/s). Concurrent transfers
// share it equally (TCP-fair processor sharing). Given a set of transfer
// requests (arrival time, size), `resolve` computes each transfer's
// completion time exactly by sweeping arrival/completion events.
#pragma once

#include <cstddef>
#include <vector>

namespace harvest::net {

struct TransferRequest {
  double arrival_s = 0.0;
  double megabytes = 0.0;
};

struct TransferOutcome {
  double start_s = 0.0;
  double finish_s = 0.0;
  /// finish − start; >= megabytes / capacity, with equality iff the
  /// transfer never shared the link.
  [[nodiscard]] double duration() const { return finish_s - start_s; }
};

class SharedLink {
 public:
  explicit SharedLink(double capacity_mbps);

  [[nodiscard]] double capacity_mbps() const { return capacity_; }

  /// Exact processor-sharing schedule for the given requests. Outcomes are
  /// returned in the same order as the requests.
  [[nodiscard]] std::vector<TransferOutcome> resolve(
      std::vector<TransferRequest> requests) const;

 private:
  double capacity_;
};

}  // namespace harvest::net
