// Stochastic network model for checkpoint traffic. The paper's live
// experiment measures each 500 MB transfer's duration against a real
// network (campus LAN at Wisconsin: mean ~110 s; WAN back to UCSB:
// mean ~475 s) and feeds the measured time back into the planner as the
// current C and R. This model reproduces that variability: a nominal link
// rate with multiplicative lognormal jitter per transfer.
#pragma once

#include <string>

#include "harvest/numerics/rng.hpp"

namespace harvest::net {

class BandwidthModel {
 public:
  /// `mean_rate_mbps`: long-run mean transfer rate in MB/s.
  /// `jitter_sigma`: lognormal sigma of the per-transfer rate multiplier
  /// (mean-one multiplier; 0 disables jitter).
  BandwidthModel(double mean_rate_mbps, double jitter_sigma);

  [[nodiscard]] double mean_rate_mbps() const { return mean_rate_; }
  [[nodiscard]] double jitter_sigma() const { return sigma_; }

  /// Expected time to move `megabytes` (no jitter).
  [[nodiscard]] double expected_transfer_seconds(double megabytes) const;

  /// Sampled time to move `megabytes` for one transfer.
  [[nodiscard]] double sample_transfer_seconds(double megabytes,
                                               numerics::Rng& rng) const;

  /// Campus-LAN preset calibrated so a 500 MB transfer averages ~110 s
  /// (the paper's Table 4 configuration).
  [[nodiscard]] static BandwidthModel campus();

  /// Cross-Internet preset calibrated so a 500 MB transfer averages ~475 s
  /// with heavier variability (the paper's Table 5 configuration).
  [[nodiscard]] static BandwidthModel wan();

 private:
  double mean_rate_;
  double sigma_;
};

}  // namespace harvest::net
