// Optimal work-interval selection: minimize the overhead ratio Γ(T)/T with
// a log-space bracket scan followed by Golden Section Search (the paper uses
// Numerical Recipes' golden section for the same minimization).
#pragma once

#include "harvest/core/markov_model.hpp"

namespace harvest::core {

struct OptimizerOptions {
  /// Search range for T in seconds. The upper bound caps how long the
  /// application will run without a checkpoint even when the model says
  /// failure is unlikely (a week by default).
  double t_min = 1.0;
  double t_max = 7.0 * 24.0 * 3600.0;
  /// Log-scan resolution used to bracket the minimum before refinement.
  int scan_points = 48;
  /// Relative tolerance for the golden-section refinement.
  double tolerance = 1e-4;
};

struct OptimalInterval {
  double work_time = 0.0;    ///< T_opt, seconds
  double gamma = 0.0;        ///< expected wall-clock time Γ(T_opt)
  double efficiency = 0.0;   ///< T_opt / Γ(T_opt)
  bool at_upper_bound = false;  ///< T_opt hit t_max (model favors "never checkpoint")
  int evaluations = 0;
};

class CheckpointOptimizer {
 public:
  explicit CheckpointOptimizer(MarkovModel model, OptimizerOptions opts = {});

  [[nodiscard]] const MarkovModel& model() const { return model_; }
  [[nodiscard]] const OptimizerOptions& options() const { return opts_; }

  /// T_opt for an interval starting when the machine has been up `age`
  /// seconds (T_elapsed in the paper; 0 right after a failure).
  [[nodiscard]] OptimalInterval optimize(double age = 0.0) const;

 private:
  MarkovModel model_;
  OptimizerOptions opts_;
};

}  // namespace harvest::core
