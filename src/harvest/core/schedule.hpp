// Aperiodic checkpoint schedules (paper §3.5). For a non-memoryless
// availability model the optimal work interval depends on the machine's
// uptime, so the schedule is a *sequence* T_opt(0), T_opt(1), … computed
// from the start of an availability period:
//
//   age(0)   = initial_age (+ R if the period opens with a recovery)
//   T_opt(i) = argmin_T Γ(T; age(i)) / T
//   age(i+1) = age(i) + T_opt(i) + C
//
// The schedule is valid until the machine fails; after a failure the
// schedule restarts from index 0 (uptime resets). Entries are computed
// lazily and memoized, so a schedule shared across many availability
// periods (as in the trace simulator) costs each index once.
#pragma once

#include <vector>

#include "harvest/core/optimizer.hpp"

namespace harvest::core {

struct ScheduleOptions {
  /// Machine uptime when the application is initiated (T_elapsed at start).
  double initial_age = 0.0;
  /// Whether the first work interval is preceded by a recovery phase that
  /// itself consumes uptime (true in the paper's recovery→work→checkpoint
  /// cycle: a placed job first restores its last checkpoint).
  bool recovery_leads = true;
  /// When false, every interval is computed at the first interval's age —
  /// i.e. the future-lifetime conditioning of §3.3 is disabled and the
  /// schedule degenerates to a periodic one. Exists for the ablation bench
  /// that quantifies what the conditioning buys.
  bool condition_on_age = true;
  OptimizerOptions optimizer;
};

struct ScheduleEntry {
  double work_time = 0.0;   ///< T_opt(i)
  double age = 0.0;         ///< machine uptime when interval i starts
  double gamma = 0.0;
  double efficiency = 0.0;  ///< model-predicted T/Γ for this interval
  bool at_upper_bound = false;
};

class CheckpointSchedule {
 public:
  CheckpointSchedule(MarkovModel model, ScheduleOptions opts = {});

  /// i-th interval (lazily computed). Returned by value: the memo vector
  /// grows on demand, so references into it would not survive later calls.
  ScheduleEntry entry(std::size_t i);

  /// Number of entries computed so far.
  [[nodiscard]] std::size_t computed() const { return entries_.size(); }

  [[nodiscard]] const MarkovModel& model() const { return optimizer_.model(); }
  [[nodiscard]] const ScheduleOptions& options() const { return opts_; }

  /// True when the availability model is memoryless (all entries equal);
  /// detected numerically from the first two entries.
  bool is_periodic();

 private:
  CheckpointOptimizer optimizer_;
  ScheduleOptions opts_;
  std::vector<ScheduleEntry> entries_;
};

}  // namespace harvest::core
