// Analytic predictions of the schedule's steady-state behavior from the
// Markov model alone — no simulation. Used to size network/storage before
// deploying ("what MB/hour will 50 of these jobs generate?") and tested
// against the trace simulator.
//
// Derivation. Per committed work interval (one 0→…→1 passage):
//   * exactly one checkpoint transfer completes (the one that commits);
//   * the chain visits state 2 an expected V = P02 / P21 times, and every
//     visit begins with a recovery transfer (completed or cut short);
//   * the passage consumes Γ seconds in expectation.
// So the transfer-initiation rate is (1 + V) / Γ and the committed-work
// throughput is T / Γ. Treating every initiated transfer as a full
// `checkpoint_size_mb` gives a slight over-estimate (interrupted transfers
// move fewer bytes); the simulator's pro-rated accounting is the ground
// truth the tests compare against.
#pragma once

#include "harvest/core/markov_model.hpp"

namespace harvest::core {

struct SteadyStatePrediction {
  double work_time = 0.0;            ///< the T the prediction was made for
  double gamma = 0.0;                ///< expected seconds per interval
  double efficiency = 0.0;           ///< T / Γ
  double recovery_visits = 0.0;      ///< expected state-2 visits / interval
  double transfers_per_hour = 0.0;   ///< initiated transfers per hour
  double mb_per_hour = 0.0;          ///< upper-bound network rate
};

/// Predict steady-state rates for running work intervals of length
/// `work_time` on a machine whose uptime at each interval start is `age`
/// (use 0 for the freshly-recovered steady state the trace simulator
/// reproduces).
[[nodiscard]] SteadyStatePrediction predict_steady_state(
    const MarkovModel& model, double work_time, double age,
    double checkpoint_size_mb = 500.0);

}  // namespace harvest::core
