#include "harvest/core/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace harvest::core {

CheckpointSchedule::CheckpointSchedule(MarkovModel model, ScheduleOptions opts)
    : optimizer_(std::move(model), opts.optimizer), opts_(opts) {
  if (!(opts_.initial_age >= 0.0)) {
    throw std::invalid_argument("CheckpointSchedule: initial_age >= 0");
  }
}

ScheduleEntry CheckpointSchedule::entry(std::size_t i) {
  while (entries_.size() <= i) {
    double age;
    if (entries_.empty() || !opts_.condition_on_age) {
      age = opts_.initial_age +
            (opts_.recovery_leads ? optimizer_.model().costs().recovery : 0.0);
    } else {
      const ScheduleEntry& prev = entries_.back();
      age = prev.age + prev.work_time + optimizer_.model().costs().checkpoint;
    }
    const OptimalInterval opt = optimizer_.optimize(age);
    ScheduleEntry e;
    e.work_time = opt.work_time;
    e.age = age;
    e.gamma = opt.gamma;
    e.efficiency = opt.efficiency;
    e.at_upper_bound = opt.at_upper_bound;
    entries_.push_back(e);
  }
  return entries_[i];
}

bool CheckpointSchedule::is_periodic() {
  const ScheduleEntry e0 = entry(0);
  const ScheduleEntry e1 = entry(1);
  const double rel =
      std::fabs(e1.work_time - e0.work_time) / std::max(e0.work_time, 1e-12);
  return rel < 1e-3;
}

}  // namespace harvest::core
