// Expected completion time of a FINITE job under a checkpoint schedule:
// "how long will my 8-hour job actually take on this machine?" — the
// question a user asks before submitting. Walks the aperiodic schedule,
// charging each interval its expected wall-clock Γ(Tᵢ; ageᵢ) until the
// accumulated committed work covers the requirement, and prices the final
// partial interval the same way.
//
// The estimate inherits the Markov model's assumptions (costs constant,
// schedule restarts after failures are folded into each Γ), so it is a
// planning-time expectation, not a distribution; the pool simulator gives
// the empirical counterpart.
#pragma once

#include "harvest/core/schedule.hpp"

namespace harvest::core {

struct MakespanEstimate {
  double expected_time_s = 0.0;   ///< wall clock including all overheads
  double work_s = 0.0;            ///< the requested computation
  std::size_t intervals = 0;      ///< checkpoint intervals consumed
  double expected_mb = 0.0;       ///< analytic network estimate (upper bound)
  /// work / expected_time — the job-level efficiency forecast.
  [[nodiscard]] double efficiency() const {
    return expected_time_s > 0.0 ? work_s / expected_time_s : 0.0;
  }
};

/// Estimate for `work_s` seconds of computation on the scheduled machine.
/// `checkpoint_size_mb` prices the network estimate. Throws on work <= 0.
[[nodiscard]] MakespanEstimate estimate_makespan(
    CheckpointSchedule& schedule, double work_s,
    double checkpoint_size_mb = 500.0);

}  // namespace harvest::core
