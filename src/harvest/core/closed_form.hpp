// Closed-form results for the exponential availability model. The general
// machinery (MarkovModel + golden section) handles the exponential too;
// these expressions exist as (a) an independent cross-check the tests pin
// the generic path against, and (b) the classical approximations users
// coming from the literature expect to find.
#pragma once

#include "harvest/core/markov_model.hpp"

namespace harvest::core {

/// Exact Γ (paper Eq. 11) for availability ~ Exponential(rate), evaluated
/// without quadrature:
///   with A = C+T, B = L+R+T,
///   K02 = 1/λ − A e^{−λA}/(1−e^{−λA}),  K22 analogous with B,
///   Γ = e^{−λA}A + (1−e^{−λA})(K02 + K22(1−e^{−λB})/e^{−λB} + B).
[[nodiscard]] double exponential_gamma(double rate, const IntervalCosts& costs,
                                       double work_time);

/// Young's classical first-order optimal interval √(2C/λ) (valid when
/// λ(C+T) ≪ 1). The full optimizer refines this; the tests verify they
/// agree in Young's regime.
[[nodiscard]] double young_interval(double rate, double checkpoint_cost);

/// Daly's higher-order refinement of Young:
///   T ≈ √(2C/λ) · [1 + (1/3)√(λC/2) + (λC)/18] − C   for λC < 2,
///   T ≈ 1/λ otherwise.
[[nodiscard]] double daly_interval(double rate, double checkpoint_cost);

}  // namespace harvest::core
