#include "harvest/core/sensitivity.hpp"

#include <stdexcept>

namespace harvest::core {
namespace {

OptimalInterval optimize_at(const dist::DistributionPtr& model, double cost,
                            double age, const OptimizerOptions& opts) {
  IntervalCosts costs;
  costs.checkpoint = cost;
  costs.recovery = cost;
  const CheckpointOptimizer optimizer(MarkovModel(model, costs), opts);
  return optimizer.optimize(age);
}

}  // namespace

std::vector<EfficiencyPoint> efficiency_vs_cost(dist::DistributionPtr model,
                                                std::span<const double> costs,
                                                double age,
                                                const OptimizerOptions& opts) {
  if (!model) throw std::invalid_argument("efficiency_vs_cost: null model");
  std::vector<EfficiencyPoint> out;
  out.reserve(costs.size());
  for (double c : costs) {
    const auto opt = optimize_at(model, c, age, opts);
    out.push_back(EfficiencyPoint{c, opt.work_time, opt.efficiency});
  }
  return out;
}

double efficiency_cost_derivative(dist::DistributionPtr model, double cost,
                                  double age, double relative_step,
                                  const OptimizerOptions& opts) {
  if (!model) {
    throw std::invalid_argument("efficiency_cost_derivative: null model");
  }
  if (!(cost > 0.0) || !(relative_step > 0.0)) {
    throw std::invalid_argument(
        "efficiency_cost_derivative: cost and step must be > 0");
  }
  const double h = cost * relative_step;
  const double lo = optimize_at(model, cost - h, age, opts).efficiency;
  const double hi = optimize_at(model, cost + h, age, opts).efficiency;
  return (hi - lo) / (2.0 * h);
}

double robustness_ratio(dist::DistributionPtr model, IntervalCosts costs,
                        double t_used, double age,
                        const OptimizerOptions& opts) {
  if (!model) throw std::invalid_argument("robustness_ratio: null model");
  if (!(t_used > 0.0)) {
    throw std::invalid_argument("robustness_ratio: t_used > 0");
  }
  const MarkovModel markov(model, costs);
  const CheckpointOptimizer optimizer(markov, opts);
  const double best = optimizer.optimize(age).efficiency;
  if (best <= 0.0) return 0.0;
  return markov.expected_efficiency(t_used, age) / best;
}

}  // namespace harvest::core
