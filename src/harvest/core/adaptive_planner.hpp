// The stateful, online side of the planner: what actually runs inside a
// guest job. The offline CheckpointSchedule assumes constant costs known in
// advance; a real job instead (paper §5.2) measures every transfer and
// re-plans with the current cost estimate and its current machine uptime.
// AdaptivePlanner packages that loop:
//
//   AdaptivePlanner planner(model, options);
//   planner.on_placement(uptime_at_start);      // job lands on a machine
//   double t = planner.next_interval();         // work this long...
//   planner.on_work_completed(t);
//   planner.on_transfer_measured(seconds);      // ...checkpoint, re-measure
//   ...
//   planner.on_eviction();                      // machine reclaimed
//
// Both the live-experiment emulation and the parallel-checkpoint simulator
// drive their jobs through this class.
#pragma once

#include "harvest/core/optimizer.hpp"

namespace harvest::core {

struct AdaptivePlannerOptions {
  /// Initial cost estimate before any transfer has been measured; negative
  /// means "must be provided via on_transfer_measured or on_placement".
  double initial_cost_s = -1.0;
  /// Exponential smoothing weight for measured costs: estimate ←
  /// (1−w)·estimate + w·measurement. 1.0 (the paper's live experiment)
  /// tracks the latest measurement only.
  double cost_smoothing = 1.0;
  OptimizerOptions optimizer;
};

class AdaptivePlanner {
 public:
  AdaptivePlanner(dist::DistributionPtr availability_model,
                  AdaptivePlannerOptions options = {});

  /// The job was placed on a machine whose uptime is `uptime_s` (0 if just
  /// rebooted/reclaimed). Resets per-placement state, keeps the cost
  /// estimate (network conditions outlive placements).
  void on_placement(double uptime_s = 0.0);

  /// A transfer (recovery or checkpoint) took `seconds`; fold it into the
  /// cost estimate. Also advances uptime by the transfer duration.
  void on_transfer_measured(double seconds);

  /// The planned work interval was completed; advances uptime.
  void on_work_completed(double seconds);

  /// The machine was reclaimed; uptime becomes meaningless until the next
  /// on_placement.
  void on_eviction();

  /// T_opt for the job's current uptime and cost estimate. Throws
  /// std::logic_error before any cost estimate exists or while evicted.
  [[nodiscard]] double next_interval() const;

  /// Model-predicted efficiency of the next interval.
  [[nodiscard]] double predicted_efficiency() const;

  [[nodiscard]] double current_uptime_s() const;
  [[nodiscard]] double current_cost_estimate_s() const;
  [[nodiscard]] bool placed() const { return placed_; }
  [[nodiscard]] const dist::Distribution& model() const { return *model_; }

 private:
  [[nodiscard]] OptimalInterval optimize_now() const;

  dist::DistributionPtr model_;
  AdaptivePlannerOptions options_;
  double uptime_s_ = 0.0;
  double cost_estimate_s_;
  bool placed_ = false;
};

}  // namespace harvest::core
