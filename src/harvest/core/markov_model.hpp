// Vaidya's three-state Markov model of a single checkpoint interval
// (paper §3.5, Figure 2), generalized to arbitrary availability
// distributions and to future-lifetime conditioning.
//
// States: 0 = interval starts (machine currently up, uptime = `age`),
//         1 = interval's checkpoint committed,
//         2 = the machine failed somewhere in the interval.
//
// Transition probabilities / expected costs, with F_age the future-lifetime
// law of the availability distribution given uptime `age` (Eq. 8), and
// F the unconditional law (a failure resets uptime):
//
//   P01 = 1 − F_age(C+T)        K01 = C + T
//   P02 = F_age(C+T)            K02 = E[X | X < C+T] under F_age
//   P21 = 1 − F(L+R+T)          K21 = L + R + T
//   P22 = F(L+R+T)              K22 = E[X | X < L+R+T] under F
//
//   Γ(T) = P01·K01 + P02·(K02 + (P22/P21)·K22 + K21)        (Eq. 11)
//
// (The paper's Eq. 11 prints "K20"; the geometric-retry expectation
// E[time 2→1] = (P22/P21)·K22 + K21 identifies it as K21.)
//
// Γ is the expected wall-clock time to advance the application by T seconds
// of useful work; Γ(T)/T is the overhead ratio the optimizer minimizes, and
// T/Γ(T) is the expected efficiency.
#pragma once

#include <string>

#include "harvest/dist/distribution.hpp"

namespace harvest::core {

/// Phase costs of the recovery → work → checkpoint cycle, in seconds.
struct IntervalCosts {
  double checkpoint = 0.0;  ///< C: time the application is blocked checkpointing
  double recovery = 0.0;    ///< R: time to restore the last checkpoint
  /// L: checkpoint latency until the checkpoint is safely committed. Vaidya
  /// distinguishes L from C; with sequential (non-overlapped) checkpointing
  /// over a network, L == C, which is the paper's (and our) default — a
  /// negative value means "use C".
  double latency = -1.0;

  [[nodiscard]] double effective_latency() const {
    return latency < 0.0 ? checkpoint : latency;
  }
  void validate() const;
};

/// All transition probabilities and costs for one work-interval length T.
struct IntervalTransitions {
  double p01 = 0.0, k01 = 0.0;
  double p02 = 0.0, k02 = 0.0;
  double p21 = 0.0, k21 = 0.0;
  double p22 = 0.0, k22 = 0.0;
};

class MarkovModel {
 public:
  /// `availability` models the machine's availability durations;
  /// `costs` the checkpoint/recovery/latency constants.
  MarkovModel(dist::DistributionPtr availability, IntervalCosts costs);

  [[nodiscard]] const dist::Distribution& availability() const {
    return *availability_;
  }
  [[nodiscard]] const IntervalCosts& costs() const { return costs_; }

  /// Transition probabilities/costs for work length T when the machine has
  /// been up `age` seconds at the interval's start.
  [[nodiscard]] IntervalTransitions transitions(double work_time,
                                                double age) const;

  /// Expected time Γ to complete one T-second work interval (Eq. 11).
  /// Returns +inf when completion is impossible (P21 == 0).
  [[nodiscard]] double gamma(double work_time, double age) const;

  /// Overhead ratio Γ(T)/T — the quantity the paper minimizes.
  [[nodiscard]] double overhead_ratio(double work_time, double age) const;

  /// Expected efficiency T/Γ(T) ∈ (0, 1].
  [[nodiscard]] double expected_efficiency(double work_time, double age) const;

 private:
  dist::DistributionPtr availability_;
  IntervalCosts costs_;
};

}  // namespace harvest::core
