#include "harvest/core/markov_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace harvest::core {

void IntervalCosts::validate() const {
  if (!(checkpoint >= 0.0) || !std::isfinite(checkpoint)) {
    throw std::invalid_argument("IntervalCosts: checkpoint must be >= 0");
  }
  if (!(recovery >= 0.0) || !std::isfinite(recovery)) {
    throw std::invalid_argument("IntervalCosts: recovery must be >= 0");
  }
  if (latency >= 0.0 && !std::isfinite(latency)) {
    throw std::invalid_argument("IntervalCosts: latency must be finite");
  }
}

MarkovModel::MarkovModel(dist::DistributionPtr availability,
                         IntervalCosts costs)
    : availability_(std::move(availability)), costs_(costs) {
  if (!availability_) throw std::invalid_argument("MarkovModel: null model");
  costs_.validate();
}

IntervalTransitions MarkovModel::transitions(double work_time,
                                             double age) const {
  if (!(work_time > 0.0) || !std::isfinite(work_time)) {
    throw std::invalid_argument("MarkovModel: work_time must be > 0");
  }
  if (!(age >= 0.0)) {
    throw std::invalid_argument("MarkovModel: age must be >= 0");
  }
  const dist::Distribution& d = *availability_;
  const double c_plus_t = costs_.checkpoint + work_time;
  const double lrt =
      costs_.effective_latency() + costs_.recovery + work_time;

  IntervalTransitions tr;
  // State-0 quantities use the future-lifetime law at `age`.
  tr.p01 = d.conditional_survival(age, c_plus_t);
  tr.k01 = c_plus_t;
  tr.p02 = 1.0 - tr.p01;
  if (tr.p02 > 0.0) {
    // E[X | X < C+T] under the conditional law; partial expectation of the
    // conditional reduces to unconditional partial expectations.
    const double s_age = d.survival(age);
    const double pe = (d.partial_expectation(age + c_plus_t) -
                       d.partial_expectation(age) -
                       age * (s_age - d.survival(age + c_plus_t))) /
                      s_age;
    tr.k02 = pe / tr.p02;
  }
  // State-2 quantities use the unconditional law (failure reset the machine).
  tr.p21 = d.survival(lrt);
  tr.k21 = lrt;
  tr.p22 = 1.0 - tr.p21;
  if (tr.p22 > 0.0) {
    tr.k22 = d.partial_expectation(lrt) / tr.p22;
  }
  return tr;
}

double MarkovModel::gamma(double work_time, double age) const {
  const IntervalTransitions tr = transitions(work_time, age);
  if (tr.p02 <= 0.0) return tr.k01;  // failure impossible: Γ = C + T
  if (tr.p21 <= 0.0) {
    // Completion after a failure is impossible: the interval never ends.
    return std::numeric_limits<double>::infinity();
  }
  return tr.p01 * tr.k01 +
         tr.p02 * (tr.k02 + tr.k22 * tr.p22 / tr.p21 + tr.k21);
}

double MarkovModel::overhead_ratio(double work_time, double age) const {
  return gamma(work_time, age) / work_time;
}

double MarkovModel::expected_efficiency(double work_time, double age) const {
  const double g = gamma(work_time, age);
  return std::isinf(g) ? 0.0 : work_time / g;
}

}  // namespace harvest::core
