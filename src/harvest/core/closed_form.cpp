#include "harvest/core/closed_form.hpp"

#include <cmath>
#include <stdexcept>

namespace harvest::core {
namespace {

// E[X | X < w] for X ~ Exponential(rate), w > 0.
double truncated_mean(double rate, double w) {
  const double ew = std::exp(-rate * w);
  const double mass = -std::expm1(-rate * w);  // 1 − e^{−λw}
  return 1.0 / rate - w * ew / mass;
}

}  // namespace

double exponential_gamma(double rate, const IntervalCosts& costs,
                         double work_time) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("exponential_gamma: rate > 0");
  }
  if (!(work_time > 0.0)) {
    throw std::invalid_argument("exponential_gamma: work_time > 0");
  }
  costs.validate();
  const double a = costs.checkpoint + work_time;
  const double b = costs.effective_latency() + costs.recovery + work_time;
  const double p01 = std::exp(-rate * a);
  const double p02 = -std::expm1(-rate * a);
  if (p02 <= 0.0) return a;
  const double p21 = std::exp(-rate * b);
  const double p22 = -std::expm1(-rate * b);
  const double k02 = truncated_mean(rate, a);
  const double k22 = truncated_mean(rate, b);
  return p01 * a + p02 * (k02 + k22 * p22 / p21 + b);
}

double young_interval(double rate, double checkpoint_cost) {
  if (!(rate > 0.0) || !(checkpoint_cost > 0.0)) {
    throw std::invalid_argument("young_interval: rate, cost > 0");
  }
  return std::sqrt(2.0 * checkpoint_cost / rate);
}

double daly_interval(double rate, double checkpoint_cost) {
  if (!(rate > 0.0) || !(checkpoint_cost > 0.0)) {
    throw std::invalid_argument("daly_interval: rate, cost > 0");
  }
  const double lc = rate * checkpoint_cost;
  if (lc >= 2.0) return 1.0 / rate;
  const double base = std::sqrt(2.0 * checkpoint_cost / rate);
  return base * (1.0 + std::sqrt(lc / 2.0) / 3.0 + lc / 18.0) -
         checkpoint_cost;
}

}  // namespace harvest::core
