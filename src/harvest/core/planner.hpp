// High-level end-user API: from recorded availability durations to a
// checkpoint schedule. This is the piece that runs "when an application is
// assigned to a resource by the resource-harvesting system" — it fits the
// requested model family to the resource's history and parameterizes the
// Markov optimizer with it.
#pragma once

#include <span>
#include <string>

#include "harvest/core/schedule.hpp"
#include "harvest/dist/distribution.hpp"

namespace harvest::core {

/// The paper's model menu, two extra families from the availability
/// literature, and automatic selection.
enum class ModelFamily {
  kExponential,
  kWeibull,
  kHyperexp2,
  kHyperexp3,
  kLognormal,
  kGamma,
  kAutoAic,  ///< fit the paper's menu, keep the smallest-AIC model
};

[[nodiscard]] std::string to_string(ModelFamily family);
[[nodiscard]] ModelFamily model_family_from_string(const std::string& name);

/// All four concrete families, in the paper's column order.
[[nodiscard]] std::span<const ModelFamily> paper_families();

class Planner {
 public:
  /// Fit `family` to the availability durations (seconds). Throws
  /// std::invalid_argument when the sample cannot support the family.
  [[nodiscard]] static dist::DistributionPtr fit_model(
      std::span<const double> durations, ModelFamily family);

  /// Build a lazily evaluated schedule for a fitted model.
  [[nodiscard]] static CheckpointSchedule make_schedule(
      dist::DistributionPtr model, IntervalCosts costs,
      ScheduleOptions opts = {});

  /// One-shot: fit + schedule.
  [[nodiscard]] static CheckpointSchedule plan(
      std::span<const double> durations, ModelFamily family,
      IntervalCosts costs, ScheduleOptions opts = {});
};

}  // namespace harvest::core
