#include "harvest/core/prediction.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace harvest::core {

SteadyStatePrediction predict_steady_state(const MarkovModel& model,
                                           double work_time, double age,
                                           double checkpoint_size_mb) {
  if (!(checkpoint_size_mb >= 0.0)) {
    throw std::invalid_argument("predict_steady_state: size >= 0");
  }
  const IntervalTransitions tr = model.transitions(work_time, age);
  SteadyStatePrediction out;
  out.work_time = work_time;
  out.gamma = model.gamma(work_time, age);
  if (std::isinf(out.gamma)) {
    out.efficiency = 0.0;
    out.recovery_visits = std::numeric_limits<double>::infinity();
    out.transfers_per_hour = std::numeric_limits<double>::infinity();
    out.mb_per_hour = std::numeric_limits<double>::infinity();
    return out;
  }
  out.efficiency = work_time / out.gamma;
  out.recovery_visits = (tr.p21 > 0.0) ? tr.p02 / tr.p21 : 0.0;
  out.transfers_per_hour = (1.0 + out.recovery_visits) / out.gamma * 3600.0;
  out.mb_per_hour = out.transfers_per_hour * checkpoint_size_mb;
  return out;
}

}  // namespace harvest::core
