// Sensitivity analysis around an optimized checkpoint plan: how the
// expected efficiency responds to the checkpoint cost (what a faster
// network would buy the site) and to using a sub-optimal interval (how
// much schedule precision actually matters). Administrators use the first
// to size storage/network; the second justifies the paper's observation
// that several model families land within a few points of each other.
#pragma once

#include <span>
#include <vector>

#include "harvest/core/optimizer.hpp"

namespace harvest::core {

struct EfficiencyPoint {
  double cost = 0.0;        ///< checkpoint cost C (= R) in seconds
  double work_time = 0.0;   ///< T_opt at that cost
  double efficiency = 0.0;  ///< predicted T/Γ at T_opt
};

/// Optimized efficiency as a function of checkpoint cost (C == R), at a
/// fixed machine uptime.
[[nodiscard]] std::vector<EfficiencyPoint> efficiency_vs_cost(
    dist::DistributionPtr model, std::span<const double> costs,
    double age = 0.0, const OptimizerOptions& opts = {});

/// d(efficiency*)/dC at the given cost (central difference on the
/// re-optimized efficiency; units: per second of checkpoint cost).
[[nodiscard]] double efficiency_cost_derivative(
    dist::DistributionPtr model, double cost, double age = 0.0,
    double relative_step = 0.05, const OptimizerOptions& opts = {});

/// Relative efficiency retained when running interval `t_used` instead of
/// T_opt: (T_used/Γ(T_used)) / (T_opt/Γ(T_opt)) ∈ (0, 1]. Values near 1
/// over a wide range of t_used mean the optimum is flat (schedule precision
/// barely matters — the paper's "small differences" effect).
[[nodiscard]] double robustness_ratio(dist::DistributionPtr model,
                                      IntervalCosts costs, double t_used,
                                      double age = 0.0,
                                      const OptimizerOptions& opts = {});

}  // namespace harvest::core
