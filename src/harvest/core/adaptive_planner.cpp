#include "harvest/core/adaptive_planner.hpp"

#include <stdexcept>

namespace harvest::core {

AdaptivePlanner::AdaptivePlanner(dist::DistributionPtr availability_model,
                                 AdaptivePlannerOptions options)
    : model_(std::move(availability_model)),
      options_(options),
      cost_estimate_s_(options.initial_cost_s) {
  if (!model_) throw std::invalid_argument("AdaptivePlanner: null model");
  if (!(options_.cost_smoothing > 0.0 && options_.cost_smoothing <= 1.0)) {
    throw std::invalid_argument(
        "AdaptivePlanner: cost_smoothing in (0, 1]");
  }
}

void AdaptivePlanner::on_placement(double uptime_s) {
  if (!(uptime_s >= 0.0)) {
    throw std::invalid_argument("on_placement: uptime >= 0");
  }
  uptime_s_ = uptime_s;
  placed_ = true;
}

void AdaptivePlanner::on_transfer_measured(double seconds) {
  if (!(seconds >= 0.0)) {
    throw std::invalid_argument("on_transfer_measured: seconds >= 0");
  }
  if (cost_estimate_s_ < 0.0) {
    cost_estimate_s_ = seconds;
  } else {
    cost_estimate_s_ = (1.0 - options_.cost_smoothing) * cost_estimate_s_ +
                       options_.cost_smoothing * seconds;
  }
  if (placed_) uptime_s_ += seconds;
}

void AdaptivePlanner::on_work_completed(double seconds) {
  if (!(seconds >= 0.0)) {
    throw std::invalid_argument("on_work_completed: seconds >= 0");
  }
  if (!placed_) throw std::logic_error("on_work_completed: not placed");
  uptime_s_ += seconds;
}

void AdaptivePlanner::on_eviction() { placed_ = false; }

OptimalInterval AdaptivePlanner::optimize_now() const {
  if (!placed_) throw std::logic_error("AdaptivePlanner: not placed");
  if (cost_estimate_s_ < 0.0) {
    throw std::logic_error("AdaptivePlanner: no cost estimate yet");
  }
  IntervalCosts costs;
  costs.checkpoint = cost_estimate_s_;
  costs.recovery = cost_estimate_s_;
  const CheckpointOptimizer optimizer(MarkovModel(model_, costs),
                                      options_.optimizer);
  return optimizer.optimize(uptime_s_);
}

double AdaptivePlanner::next_interval() const { return optimize_now().work_time; }

double AdaptivePlanner::predicted_efficiency() const {
  return optimize_now().efficiency;
}

double AdaptivePlanner::current_uptime_s() const {
  if (!placed_) throw std::logic_error("current_uptime_s: not placed");
  return uptime_s_;
}

double AdaptivePlanner::current_cost_estimate_s() const {
  if (cost_estimate_s_ < 0.0) {
    throw std::logic_error("current_cost_estimate_s: none yet");
  }
  return cost_estimate_s_;
}

}  // namespace harvest::core
