#include "harvest/core/makespan.hpp"

#include <algorithm>
#include <stdexcept>

#include "harvest/core/prediction.hpp"

namespace harvest::core {

MakespanEstimate estimate_makespan(CheckpointSchedule& schedule,
                                   double work_s, double checkpoint_size_mb) {
  if (!(work_s > 0.0)) {
    throw std::invalid_argument("estimate_makespan: work_s > 0");
  }
  if (!(checkpoint_size_mb >= 0.0)) {
    throw std::invalid_argument("estimate_makespan: size >= 0");
  }
  const MarkovModel& model = schedule.model();

  MakespanEstimate est;
  est.work_s = work_s;
  // The job starts with one recovery-equivalent input transfer (fetching
  // its input/last state), mirroring the simulators' accounting.
  est.expected_mb += checkpoint_size_mb;

  double remaining = work_s;
  for (std::size_t i = 0; remaining > 0.0; ++i) {
    const ScheduleEntry entry = schedule.entry(i);
    const double chunk = std::min(entry.work_time, remaining);
    // Γ for the (possibly shortened) final interval at this age.
    const double gamma = (chunk == entry.work_time)
                             ? entry.gamma
                             : model.gamma(chunk, entry.age);
    est.expected_time_s += gamma;
    const auto pred =
        predict_steady_state(model, chunk, entry.age, checkpoint_size_mb);
    est.expected_mb +=
        checkpoint_size_mb * (1.0 + pred.recovery_visits);
    remaining -= chunk;
    ++est.intervals;
    if (est.intervals > 1000000) {
      throw std::runtime_error(
          "estimate_makespan: schedule does not make progress");
    }
  }
  return est;
}

}  // namespace harvest::core
