#include "harvest/core/planner.hpp"

#include <array>
#include <memory>
#include <stdexcept>

#include "harvest/fit/em_hyperexp.hpp"
#include "harvest/fit/mle_exponential.hpp"
#include "harvest/fit/mle_gamma.hpp"
#include "harvest/fit/mle_lognormal.hpp"
#include "harvest/fit/mle_weibull.hpp"
#include "harvest/fit/model_select.hpp"

namespace harvest::core {

std::string to_string(ModelFamily family) {
  switch (family) {
    case ModelFamily::kExponential: return "exponential";
    case ModelFamily::kWeibull: return "weibull";
    case ModelFamily::kHyperexp2: return "hyperexp2";
    case ModelFamily::kHyperexp3: return "hyperexp3";
    case ModelFamily::kLognormal: return "lognormal";
    case ModelFamily::kGamma: return "gamma";
    case ModelFamily::kAutoAic: return "auto-aic";
  }
  throw std::invalid_argument("to_string: unknown ModelFamily");
}

ModelFamily model_family_from_string(const std::string& name) {
  if (name == "exponential" || name == "exp") return ModelFamily::kExponential;
  if (name == "weibull") return ModelFamily::kWeibull;
  if (name == "hyperexp2" || name == "hyper2") return ModelFamily::kHyperexp2;
  if (name == "hyperexp3" || name == "hyper3") return ModelFamily::kHyperexp3;
  if (name == "lognormal") return ModelFamily::kLognormal;
  if (name == "gamma") return ModelFamily::kGamma;
  if (name == "auto-aic" || name == "auto") return ModelFamily::kAutoAic;
  throw std::invalid_argument("model_family_from_string: unknown family '" +
                              name + "'");
}

std::span<const ModelFamily> paper_families() {
  static constexpr std::array<ModelFamily, 4> kFamilies = {
      ModelFamily::kExponential, ModelFamily::kWeibull,
      ModelFamily::kHyperexp2, ModelFamily::kHyperexp3};
  return kFamilies;
}

dist::DistributionPtr Planner::fit_model(std::span<const double> durations,
                                         ModelFamily family) {
  switch (family) {
    case ModelFamily::kExponential:
      return std::make_shared<dist::Exponential>(
          fit::fit_exponential_mle(durations));
    case ModelFamily::kWeibull:
      return std::make_shared<dist::Weibull>(
          fit::fit_weibull_mle(durations));
    case ModelFamily::kHyperexp2:
      return std::make_shared<dist::Hyperexponential>(
          fit::fit_hyperexp_em(durations, 2).model);
    case ModelFamily::kHyperexp3:
      return std::make_shared<dist::Hyperexponential>(
          fit::fit_hyperexp_em(durations, 3).model);
    case ModelFamily::kLognormal:
      return std::make_shared<dist::Lognormal>(
          fit::fit_lognormal_mle(durations));
    case ModelFamily::kGamma:
      return std::make_shared<dist::GammaDist>(fit::fit_gamma_mle(durations));
    case ModelFamily::kAutoAic: {
      const auto fits = fit::fit_all(durations);
      return fit::best_by_aic(fits).model;
    }
  }
  throw std::invalid_argument("Planner::fit_model: unknown ModelFamily");
}

CheckpointSchedule Planner::make_schedule(dist::DistributionPtr model,
                                          IntervalCosts costs,
                                          ScheduleOptions opts) {
  return CheckpointSchedule(MarkovModel(std::move(model), costs), opts);
}

CheckpointSchedule Planner::plan(std::span<const double> durations,
                                 ModelFamily family, IntervalCosts costs,
                                 ScheduleOptions opts) {
  return make_schedule(fit_model(durations, family), costs, opts);
}

}  // namespace harvest::core
