#include "harvest/core/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "harvest/numerics/minimize.hpp"

namespace harvest::core {

CheckpointOptimizer::CheckpointOptimizer(MarkovModel model,
                                         OptimizerOptions opts)
    : model_(std::move(model)), opts_(opts) {
  if (!(opts_.t_min > 0.0) || !(opts_.t_max > opts_.t_min)) {
    throw std::invalid_argument(
        "CheckpointOptimizer: need 0 < t_min < t_max");
  }
  if (opts_.scan_points < 3) {
    throw std::invalid_argument("CheckpointOptimizer: scan_points >= 3");
  }
}

OptimalInterval CheckpointOptimizer::optimize(double age) const {
  const auto objective = [this, age](double t) {
    return model_.overhead_ratio(t, age);
  };
  const auto res = numerics::minimize_log_bracketed(
      objective, opts_.t_min, opts_.t_max, opts_.scan_points, opts_.tolerance);

  OptimalInterval out;
  out.work_time = res.x;
  out.gamma = res.value * res.x;
  out.efficiency = std::isinf(out.gamma) ? 0.0 : res.x / out.gamma;
  out.evaluations = res.evaluations;
  // Detect a minimum pinned to the top of the search range (within one scan
  // grid step of t_max).
  const double log_step = (std::log(opts_.t_max) - std::log(opts_.t_min)) /
                          (opts_.scan_points - 1);
  out.at_upper_bound = std::log(opts_.t_max) - std::log(res.x) < 1.5 * log_step;
  return out;
}

}  // namespace harvest::core
