#include "harvest/sim/sweep.hpp"

#include <map>
#include <stdexcept>

#include "harvest/stats/ttest.hpp"

namespace harvest::sim {

char family_letter(core::ModelFamily family) {
  switch (family) {
    case core::ModelFamily::kExponential: return 'e';
    case core::ModelFamily::kWeibull: return 'w';
    case core::ModelFamily::kHyperexp2: return '2';
    case core::ModelFamily::kHyperexp3: return '3';
    case core::ModelFamily::kLognormal: return 'l';
    case core::ModelFamily::kGamma: return 'g';
    case core::ModelFamily::kAutoAic: return 'a';
  }
  throw std::invalid_argument("family_letter: unknown family");
}

SweepCell SweepResult::cell(std::size_t row, std::size_t family,
                            SweepMetric metric, double alpha) const {
  if (row >= rows.size()) throw std::out_of_range("SweepResult::cell: row");
  if (family >= families.size()) {
    throw std::out_of_range("SweepResult::cell: family");
  }
  const auto& vectors = metric == SweepMetric::kEfficiency
                            ? rows[row].efficiency
                            : rows[row].network_mb;
  SweepCell out;
  out.ci = stats::mean_confidence_interval(vectors[family]);
  for (std::size_t other = 0; other < vectors.size(); ++other) {
    if (other == family) continue;
    const auto t =
        stats::paired_t_test(vectors[family], vectors[other], alpha);
    if (t.significant && t.mean_diff > 0.0) {
      if (!out.beats.empty()) out.beats += ',';
      out.beats += family_letter(families[other]);
    }
  }
  return out;
}

SweepResult run_sweep(const std::vector<trace::AvailabilityTrace>& traces,
                      const SweepConfig& config, util::ThreadPool* pool) {
  if (config.costs.empty() || config.families.empty()) {
    throw std::invalid_argument("run_sweep: need costs and families");
  }
  SweepResult result;
  result.families = config.families;
  result.rows.reserve(config.costs.size());

  for (double cost : config.costs) {
    ExperimentConfig cfg = config.experiment;
    cfg.checkpoint_cost_s = cost;

    // machine_id → (efficiency, mb) per family.
    std::vector<std::map<std::string, std::pair<double, double>>> per_family(
        config.families.size());
    for (std::size_t f = 0; f < config.families.size(); ++f) {
      const auto res =
          run_trace_experiment(traces, config.families[f], cfg, pool);
      for (const auto& m : res.machines) {
        per_family[f][m.machine_id] = {m.sim.efficiency(),
                                       m.sim.network_mb};
      }
    }

    SweepRow row;
    row.cost = cost;
    row.efficiency.resize(config.families.size());
    row.network_mb.resize(config.families.size());
    for (const auto& [id, first_metrics] : per_family[0]) {
      (void)first_metrics;
      bool everywhere = true;
      for (std::size_t f = 1; f < per_family.size(); ++f) {
        if (per_family[f].count(id) == 0) {
          everywhere = false;
          break;
        }
      }
      if (!everywhere) continue;
      for (std::size_t f = 0; f < per_family.size(); ++f) {
        const auto& [eff, mb] = per_family[f].at(id);
        row.efficiency[f].push_back(eff);
        row.network_mb[f].push_back(mb);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace harvest::sim
