#include "harvest/sim/job_sim.hpp"

#include <cmath>
#include <stdexcept>

#include "harvest/numerics/rng.hpp"

namespace harvest::sim {

const char* to_string(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kRecovery: return "recovery";
    case SimEventKind::kRecoveryInterrupted: return "recovery.interrupted";
    case SimEventKind::kWork: return "work";
    case SimEventKind::kWorkInterrupted: return "work.interrupted";
    case SimEventKind::kCheckpoint: return "checkpoint";
    case SimEventKind::kCheckpointInterrupted:
      return "checkpoint.interrupted";
  }
  throw std::invalid_argument("SimEventKind: unknown kind");
}

namespace {

SimEventKind kind_from_name(const std::string& name) {
  for (const SimEventKind kind :
       {SimEventKind::kRecovery, SimEventKind::kRecoveryInterrupted,
        SimEventKind::kWork, SimEventKind::kWorkInterrupted,
        SimEventKind::kCheckpoint, SimEventKind::kCheckpointInterrupted}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("SimEventKind: unknown event name " + name);
}

}  // namespace

JobSimResult simulate_job_on_trace(std::span<const double> availability_periods,
                                   core::CheckpointSchedule& schedule,
                                   const JobSimConfig& config) {
  if (!(config.checkpoint_size_mb >= 0.0)) {
    throw std::invalid_argument("simulate_job_on_trace: size >= 0");
  }
  if (!(config.cost_jitter_sigma >= 0.0)) {
    throw std::invalid_argument("simulate_job_on_trace: jitter sigma >= 0");
  }
  const double ckpt_cost = schedule.model().costs().checkpoint;
  const double rec_cost = schedule.model().costs().recovery;

  numerics::Rng jitter_rng(config.jitter_seed);
  const double sigma = config.cost_jitter_sigma;
  // Mean-one multiplier on the wire time of one transfer.
  const auto jittered = [&](double nominal) {
    if (sigma == 0.0 || nominal == 0.0) return nominal;
    return nominal * jitter_rng.lognormal(-0.5 * sigma * sigma, sigma);
  };

  JobSimResult res;
  double clock = 0.0;  // cumulative machine time across the whole trace
  std::size_t period_index = 0;

  // All phase recording funnels through one tracer; the SimEvent timeline
  // in the result is reconstructed from it afterwards. Unbounded so
  // record_events never silently loses the head of a long trace.
  const bool recording = config.record_events || config.tracer != nullptr;
  obs::EventTracer local_tracer(/*capacity=*/0);
  const auto record = [&](SimEventKind kind, double start, double duration,
                          double bytes_mb) {
    if (recording) {
      local_tracer.record_complete(to_string(kind), "sim", start, duration,
                                   period_index, bytes_mb);
    }
  };

  bool first_period = true;
  for (const double period : availability_periods) {
    if (!(period >= 0.0) || !std::isfinite(period)) {
      throw std::invalid_argument(
          "simulate_job_on_trace: periods must be finite and >= 0");
    }
    res.total_time += period;
    double pos = 0.0;  // elapsed time within this availability period

    // The period opens with a recovery of the last committed checkpoint —
    // unless this is a cold start with nothing to restore.
    const bool recover_now = config.first_period_recovers || !first_period;
    first_period = false;
    const double this_rec = recover_now ? jittered(rec_cost) : 0.0;
    if (recover_now && pos + this_rec > period) {
      const double partial = period - pos;
      res.recovery_time += partial;
      ++res.recoveries_interrupted;
      double moved = 0.0;
      if (config.prorate_partial_transfers && this_rec > 0.0) {
        moved = config.checkpoint_size_mb * partial / this_rec;
        res.network_mb += moved;
      }
      record(SimEventKind::kRecoveryInterrupted, clock + pos, partial, moved);
      ++res.evictions;
      clock += period;
      ++period_index;
      continue;
    }
    if (recover_now) {
      record(SimEventKind::kRecovery, clock + pos, this_rec,
             config.checkpoint_size_mb);
      pos += this_rec;
      res.recovery_time += this_rec;
      res.network_mb += config.checkpoint_size_mb;
      ++res.recoveries_completed;
    }

    // Work/checkpoint intervals until eviction ends the period.
    for (std::size_t i = 0;; ++i) {
      const double work = schedule.entry(i).work_time;
      const double this_ckpt = jittered(ckpt_cost);
      if (pos + work + this_ckpt <= period) {
        // Interval committed.
        record(SimEventKind::kWork, clock + pos, work, 0.0);
        record(SimEventKind::kCheckpoint, clock + pos + work, this_ckpt,
               config.checkpoint_size_mb);
        pos += work + this_ckpt;
        res.useful_work += work;
        res.checkpoint_time += this_ckpt;
        res.network_mb += config.checkpoint_size_mb;
        ++res.checkpoints_completed;
        ++res.intervals_completed;
        if (pos >= period) {  // eviction lands exactly on the boundary
          ++res.evictions;
          break;
        }
        continue;
      }
      // Eviction hits inside this interval.
      if (pos + work <= period) {
        // Work finished but the checkpoint was cut off: all of it is lost.
        const double partial_ckpt = period - pos - work;
        res.lost_time += work;
        res.checkpoint_time += partial_ckpt;
        ++res.checkpoints_interrupted;
        double moved = 0.0;
        if (config.prorate_partial_transfers && this_ckpt > 0.0) {
          moved = config.checkpoint_size_mb * partial_ckpt / this_ckpt;
          res.network_mb += moved;
        }
        record(SimEventKind::kWorkInterrupted, clock + pos, work, 0.0);
        record(SimEventKind::kCheckpointInterrupted, clock + pos + work,
               partial_ckpt, moved);
      } else {
        // Eviction mid-work.
        record(SimEventKind::kWorkInterrupted, clock + pos, period - pos,
               0.0);
        res.lost_time += period - pos;
      }
      ++res.evictions;
      break;
    }
    clock += period;
    ++period_index;
  }

  if (recording) {
    const auto traced = local_tracer.events();
    if (config.tracer != nullptr) {
      for (const auto& ev : traced) config.tracer->record(ev);
    }
    if (config.record_events) {
      res.events.reserve(traced.size());
      for (const auto& ev : traced) {
        res.events.push_back(SimEvent{kind_from_name(ev.name), ev.start_s,
                                      ev.duration_s,
                                      static_cast<std::size_t>(ev.id),
                                      ev.value});
      }
    }
  }
  return res;
}

}  // namespace harvest::sim
