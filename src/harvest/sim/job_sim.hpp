// Trace-driven discrete-event simulation of one long-running job on one
// machine (paper §5.1). The job perpetually executes the
// recovery → work → checkpoint cycle against the machine's recorded
// availability periods: each trace duration is one uninterrupted period,
// whose end is an eviction that destroys all un-checkpointed work.
//
// Accounting identity (asserted by the property tests): every simulated
// second is attributed to exactly one of {useful work, checkpoint transfer,
// recovery transfer, lost work}, so
//   total_time == useful_work + checkpoint_time + recovery_time + lost_time.
//
// Network accounting: completed checkpoints and recoveries move exactly
// `checkpoint_size_mb`; transfers cut off by an eviction move the elapsed
// fraction (pro-rated), matching what a byte counter on the wire would see.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "harvest/core/schedule.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::sim {

struct JobSimConfig {
  /// Megabytes moved by one full checkpoint or recovery (the paper uses
  /// 500 MB — the working-set size of its target application).
  double checkpoint_size_mb = 500.0;
  /// When false, interrupted transfers contribute zero bytes instead of the
  /// pro-rated fraction.
  bool prorate_partial_transfers = true;
  /// When > 0, each transfer's ACTUAL duration is the schedule's constant
  /// cost times a mean-one lognormal multiplier with this sigma — the
  /// "variable network performance" the paper's §5.3 identifies as a gap
  /// between its Markov model (constant C, R) and reality. The schedule
  /// still plans with the constant; only the simulated wire time varies.
  double cost_jitter_sigma = 0.0;
  std::uint64_t jitter_seed = 12345;
  /// Record a full per-phase event timeline into JobSimResult::events
  /// (costs memory proportional to the number of phases; off by default).
  /// Recording goes through an obs::EventTracer internally, so the timeline
  /// is also exportable as JSONL / Chrome trace_event via `tracer`. Every
  /// event carries the bytes that moved during it (pro-rated for
  /// interrupted transfers, honoring `prorate_partial_transfers`), so the
  /// timeline satisfies the same wire-byte accounting identity as
  /// JobSimResult::network_mb: Σ event bytes == network_mb.
  bool record_events = false;
  /// Optional sink for the same phase events (category "sim", id = period
  /// index, value = bytes moved). Works with or without `record_events`;
  /// useful to merge many simulations into one inspectable timeline.
  obs::EventTracer* tracer = nullptr;
  /// When false, the FIRST availability period starts computing directly:
  /// a brand-new job has no checkpoint to restore yet (cold start). The
  /// paper simulates steady state ("a job that begins before the first
  /// measurement"), which is the default true.
  bool first_period_recovers = true;
};

/// Optional per-event timeline of a simulation (enable via
/// JobSimConfig::record_events). Times are cumulative machine time across
/// the whole trace.
enum class SimEventKind {
  kRecovery,
  kRecoveryInterrupted,
  kWork,
  kWorkInterrupted,
  kCheckpoint,
  kCheckpointInterrupted,
};

struct SimEvent {
  SimEventKind kind = SimEventKind::kWork;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::size_t period_index = 0;
  /// Megabytes that traversed the wire during this event: the full
  /// checkpoint size for completed transfers, the pro-rated fraction for
  /// interrupted ones (zero when proration is disabled), zero for work.
  double bytes_mb = 0.0;
};

/// Stable event name used by the tracer exports ("work", "checkpoint",
/// "recovery.interrupted", …).
[[nodiscard]] const char* to_string(SimEventKind kind);

struct JobSimResult {
  double total_time = 0.0;       ///< Σ availability durations consumed
  double useful_work = 0.0;      ///< committed (checkpointed) work
  double checkpoint_time = 0.0;  ///< incl. partial checkpoints cut by eviction
  double recovery_time = 0.0;    ///< incl. partial recoveries
  double lost_time = 0.0;        ///< work destroyed by evictions

  std::size_t checkpoints_completed = 0;
  std::size_t checkpoints_interrupted = 0;
  std::size_t recoveries_completed = 0;
  std::size_t recoveries_interrupted = 0;
  std::size_t intervals_completed = 0;
  std::size_t evictions = 0;

  double network_mb = 0.0;

  /// Populated only when JobSimConfig::record_events is set. The events
  /// partition total_time exactly (every simulated second belongs to
  /// exactly one event) and their bytes_mb sum to network_mb.
  std::vector<SimEvent> events;

  /// Fraction of machine time spent on useful work (the paper's efficiency
  /// metric, y-axis of Figure 3).
  [[nodiscard]] double efficiency() const {
    return total_time > 0.0 ? useful_work / total_time : 0.0;
  }
  /// MB transferred per hour of machine time (paper Tables 4–5, col. 4).
  [[nodiscard]] double mb_per_hour() const {
    return total_time > 0.0 ? network_mb / (total_time / 3600.0) : 0.0;
  }
};

/// Simulate a job across the given availability periods, checkpointing on
/// `schedule` (which restarts from entry 0 after every eviction — uptime
/// resets). The schedule's cost constants C and R are taken from its model.
[[nodiscard]] JobSimResult simulate_job_on_trace(
    std::span<const double> availability_periods,
    core::CheckpointSchedule& schedule, const JobSimConfig& config = {});

}  // namespace harvest::sim
