// Calendar event queue (R. Brown, CACM 1988): the classic O(1) pending-event
// set behind simlib-style event-list disciplines. Events hash into a ring of
// day buckets of width `w`; pop scans the current day for the earliest entry
// and steps to the next day when the bucket holds nothing due, so both push
// and pop are amortized O(1) when the bucket count tracks the population —
// the property that lets a million-machine pool run its ~10^8 spell
// transitions without a log-factor heap walk.
//
// Ordering contract (what the deterministic engines rely on): entries pop in
// ascending (time, key) order, bit-exactly and independent of push order,
// bucket count, or resize history. Ties in time are broken by the
// caller-chosen 64-bit key — a sequence number, job id, or machine index —
// which is how the sharded megapool engine reproduces the single-threaded
// event order. Equal times always land in the same day, so the tie-break
// never crosses a bucket boundary.
//
// The scan cursor is an integer day number, not a float boundary: an entry
// is due on the scanned day iff day_of(entry.time) equals it, an exact
// comparison immune to the rounding a `time < k*width` test would risk at
// bucket edges. A push into an earlier day than the scan has reached (legal
// whenever the lazy scan ran ahead to a sparse far-future minimum) rewinds
// the scan, so nothing is ever skipped.
//
// Resizes (grow at >2 entries/bucket, shrink at <1/4) re-estimate the day
// width from the live population's time span and redistribute; the scan is
// rebuilt from the last popped time, so a resize is observationally
// invisible. A guard path (one full ring scanned without a due entry) does a
// direct min search and re-anchors the scan, which keeps sparse far-future
// populations correct regardless of how badly the width fits them.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace harvest::sim {

template <typename Payload>
class CalendarQueue {
 public:
  struct Entry {
    double time = 0.0;
    std::uint64_t key = 0;  ///< tie-break for equal times (lower pops first)
    Payload payload{};
  };

  explicit CalendarQueue(double initial_width = 1.0,
                         std::size_t initial_buckets = 8)
      : width_(initial_width > 0.0 && std::isfinite(initial_width)
                   ? initial_width
                   : 1.0),
        buckets_(round_up_pow2(initial_buckets < 2 ? 2 : initial_buckets)) {}

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  void push(double time, std::uint64_t key, Payload payload) {
    if (!(time >= 0.0) || !std::isfinite(time)) {
      throw std::invalid_argument("CalendarQueue::push: bad time");
    }
    const std::uint64_t day = day_of(time);
    buckets_[day & (buckets_.size() - 1)].push_back(
        Entry{time, key, std::move(payload)});
    ++count_;
    peek_valid_ = false;
    // Rewind so the new entry cannot be behind the scan: cursor_ tracks the
    // last popped time, but the lazy scan may have run ahead of it to a
    // sparse far-future minimum.
    cursor_ = std::min(cursor_, time);
    scan_day_ = std::min(scan_day_, day);
    if (count_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
      resize(buckets_.size() * 2);
    }
  }

  /// Earliest entry by (time, key); nullptr when empty. Valid until the next
  /// push/pop.
  [[nodiscard]] const Entry* peek() const {
    if (count_ == 0) return nullptr;
    if (!peek_valid_) {
      locate_min();
      peek_valid_ = true;
    }
    return &buckets_[peek_bucket_][peek_slot_];
  }

  /// Earliest pending time; +inf when empty.
  [[nodiscard]] double next_time() const {
    const Entry* e = peek();
    return e != nullptr ? e->time : std::numeric_limits<double>::infinity();
  }

  /// Remove and return the earliest entry by (time, key).
  Entry pop() {
    const Entry* top = peek();
    if (top == nullptr) throw std::logic_error("CalendarQueue::pop: empty");
    auto& bucket = buckets_[peek_bucket_];
    Entry out = std::move(bucket[peek_slot_]);
    bucket[peek_slot_] = std::move(bucket.back());
    bucket.pop_back();
    --count_;
    peek_valid_ = false;
    cursor_ = out.time;  // no remaining entry is earlier
    if (count_ < buckets_.size() / 4 && buckets_.size() > 8) {
      resize(buckets_.size() / 2);
    }
    return out;
  }

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  /// Day numbers stay below this, keeping the double→uint64 cast defined
  /// even when a resize estimates a pathologically narrow width.
  static constexpr double kMaxDay = 9.0e15;

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  [[nodiscard]] std::uint64_t day_of(double time) const {
    return static_cast<std::uint64_t>(time / width_);
  }

  /// Find the earliest (time, key) entry. Scans days forward from
  /// scan_day_; falls back to a direct min search (and re-anchors) after
  /// one fruitless lap of the ring.
  void locate_min() const {
    std::uint64_t day = scan_day_;
    for (std::size_t lap = 0; lap <= buckets_.size(); ++lap, ++day) {
      const auto& bucket = buckets_[day & (buckets_.size() - 1)];
      std::size_t best = bucket.size();
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (day_of(bucket[i].time) != day) continue;  // another lap's entry
        if (best == bucket.size() || earlier(bucket[i], bucket[best])) {
          best = i;
        }
      }
      if (best != bucket.size()) {
        scan_day_ = day;
        peek_bucket_ = day & (buckets_.size() - 1);
        peek_slot_ = best;
        return;
      }
    }
    direct_min();
  }

  void direct_min() const {
    std::size_t bb = 0;
    std::size_t bs = 0;
    const Entry* best = nullptr;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      const auto& bucket = buckets_[b];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (best == nullptr || earlier(bucket[i], *best)) {
          best = &bucket[i];
          bb = b;
          bs = i;
        }
      }
    }
    // count_ > 0 is guaranteed by peek(); re-anchor the scan on the min.
    scan_day_ = day_of(best->time);
    peek_bucket_ = bb;
    peek_slot_ = bs;
  }

  static bool earlier(const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.key < b.key;
  }

  void resize(std::size_t new_bucket_count) {
    std::vector<Entry> all;
    all.reserve(count_);
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (auto& bucket : buckets_) {
      for (auto& e : bucket) {
        lo = std::min(lo, e.time);
        hi = std::max(hi, e.time);
        all.push_back(std::move(e));
      }
      bucket.clear();
    }
    // One entry per bucket on average ⇒ amortized O(1) scans. A degenerate
    // span (all times equal, or empty) keeps the previous width; a span so
    // narrow the day numbers would overflow is widened to the cast-safe
    // floor.
    if (!all.empty() && hi > lo) {
      width_ = (hi - lo) / static_cast<double>(all.size());
    }
    if (hi / width_ >= kMaxDay) width_ = hi / kMaxDay;
    buckets_.assign(new_bucket_count, {});
    for (auto& e : all) {
      buckets_[day_of(e.time) & (buckets_.size() - 1)].push_back(
          std::move(e));
    }
    // cursor_ is ≤ every live time, so its day under the NEW width is ≤
    // every live day: the rebuilt scan cannot skip anything.
    scan_day_ = day_of(cursor_);
    peek_valid_ = false;
  }

  double width_;
  std::vector<std::vector<Entry>> buckets_;
  std::size_t count_ = 0;
  double cursor_ = 0.0;  ///< min(last popped time, earliest push since)
  // Scan state (mutable: advanced lazily by const peeks).
  mutable std::uint64_t scan_day_ = 0;
  mutable bool peek_valid_ = false;
  mutable std::size_t peek_bucket_ = 0;
  mutable std::size_t peek_slot_ = 0;
};

}  // namespace harvest::sim
