// The experiment engine behind the paper's simulation study (§5.1): for a
// set of machine traces, fit each requested model family to every machine's
// training prefix, derive a checkpoint schedule per (machine, family,
// checkpoint-cost) configuration, and run the trace-driven job simulation
// over the experimental suffix. Machines fan out across a thread pool.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/obs/metrics.hpp"
#include "harvest/sim/job_sim.hpp"
#include "harvest/trace/trace.hpp"
#include "harvest/util/thread_pool.hpp"

namespace harvest::sim {

struct ExperimentConfig {
  /// Training prefix length (the paper uses the first 25 observations).
  std::size_t train_count = 25;
  /// Checkpoint/recovery cost in seconds (the paper sets C == R).
  double checkpoint_cost_s = 100.0;
  JobSimConfig job;
  core::OptimizerOptions optimizer;
  /// Forwarded to ScheduleOptions; false disables future-lifetime
  /// conditioning (ablation).
  bool condition_on_age = true;
  /// When set, the experiment feeds this registry: per-phase duration
  /// histograms (p50/p99 extraction), checkpoint/recovery/eviction
  /// counters, and megabytes moved, all under
  /// "<metrics_prefix>.<family letter>." so multi-family sweeps stay
  /// separable. Forces event recording internally (the per-sim timelines
  /// are not retained). Thread-safe: the registry's metrics are atomic.
  obs::MetricsRegistry* metrics = nullptr;
  /// Metric name prefix; empty means "sim".
  std::string metrics_prefix;
};

struct MachineOutcome {
  std::string machine_id;
  JobSimResult sim;
  /// Family actually fitted (meaningful with ModelFamily::kAutoAic).
  std::string fitted_family;
};

struct ExperimentResult {
  std::vector<MachineOutcome> machines;
  /// Machines skipped because the family could not be fitted to their
  /// training prefix (e.g. degenerate samples).
  std::vector<std::string> skipped;

  [[nodiscard]] std::vector<double> efficiencies() const;
  [[nodiscard]] std::vector<double> network_mbs() const;
};

/// Run one (family, cost) configuration over every trace. Traces shorter
/// than train_count + 1 are skipped. Pass a thread pool to parallelize
/// across machines; pass nullptr to run inline.
[[nodiscard]] ExperimentResult run_trace_experiment(
    const std::vector<trace::AvailabilityTrace>& traces,
    core::ModelFamily family, const ExperimentConfig& config,
    util::ThreadPool* pool = nullptr);

}  // namespace harvest::sim
