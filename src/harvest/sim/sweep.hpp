// Grid sweeps over (checkpoint cost × model family) with machine-paired
// results — the reusable engine behind the paper's Tables 1 and 3 and the
// CLI. For every cost it runs each family over the same traces, keeps only
// machines every family could fit (so per-machine pairing is valid), and
// exposes the paired metric vectors plus the paper's summary statistics
// (mean, 95 % CI, and "beats" letters from two-sided paired t-tests).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/sim/experiment.hpp"
#include "harvest/stats/summary.hpp"

namespace harvest::sim {

/// Which metric a summary refers to.
enum class SweepMetric { kEfficiency, kNetworkMb };

struct SweepCell {
  stats::ConfidenceInterval ci;
  /// Letters (e/w/2/3… indexed by family order) of the families whose
  /// metric is statistically significantly smaller than this cell's.
  std::string beats;
};

struct SweepRow {
  double cost = 0.0;
  /// Paired per-machine metrics, one vector per family (same index ⇒ same
  /// machine across families).
  std::vector<std::vector<double>> efficiency;
  std::vector<std::vector<double>> network_mb;

  [[nodiscard]] std::size_t machines() const {
    return efficiency.empty() ? 0 : efficiency.front().size();
  }
};

struct SweepResult {
  std::vector<core::ModelFamily> families;
  std::vector<SweepRow> rows;

  /// Summary cell for (row, family, metric) with significance letters at
  /// level `alpha`.
  [[nodiscard]] SweepCell cell(std::size_t row, std::size_t family,
                               SweepMetric metric,
                               double alpha = 0.05) const;
};

struct SweepConfig {
  std::vector<double> costs;
  std::vector<core::ModelFamily> families = {
      core::ModelFamily::kExponential, core::ModelFamily::kWeibull,
      core::ModelFamily::kHyperexp2, core::ModelFamily::kHyperexp3};
  ExperimentConfig experiment;  ///< checkpoint_cost_s is overwritten per row
};

/// One-letter code per family position (e, w, 2, 3, l, g) used in `beats`.
[[nodiscard]] char family_letter(core::ModelFamily family);

/// Run the sweep over the traces (optionally parallel across machines).
[[nodiscard]] SweepResult run_sweep(
    const std::vector<trace::AvailabilityTrace>& traces,
    const SweepConfig& config, util::ThreadPool* pool = nullptr);

}  // namespace harvest::sim
