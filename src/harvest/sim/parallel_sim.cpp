#include "harvest/sim/parallel_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "harvest/core/adaptive_planner.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::sim {

double ParallelSimResult::efficiency() const {
  double useful = 0.0;
  for (const auto& j : jobs) useful += j.useful_work_s;
  const double denom = horizon_s * static_cast<double>(jobs.size());
  return denom > 0.0 ? useful / denom : 0.0;
}

double ParallelSimResult::total_moved_mb() const {
  double mb = 0.0;
  for (const auto& j : jobs) mb += j.moved_mb;
  return mb;
}

double ParallelSimResult::mean_stretch() const {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    s += j.stretch_sum;
    n += j.transfers_completed;
  }
  return n > 0 ? s / static_cast<double>(n) : 0.0;
}

std::size_t ParallelSimResult::total_evictions() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.evictions;
  return n;
}

namespace {

enum class Phase { kTransferring, kWorking };

struct JobState {
  dist::DistributionPtr law;
  std::optional<core::AdaptivePlanner> planner;
  numerics::Rng rng{0};

  double period_end = 0.0;

  Phase phase = Phase::kTransferring;
  // Transfer state.
  double remaining_mb = 0.0;
  bool transfer_is_checkpoint = false;
  double transfer_started = 0.0;
  double pending_work_s = 0.0;  // work carried by an in-flight checkpoint
  // Work state.
  double work_end = 0.0;
  double work_started = 0.0;

  ParallelJobStats stats;
};

constexpr double kEps = 1e-7;

}  // namespace

ParallelSimResult run_parallel_simulation(
    const std::vector<dist::DistributionPtr>& laws,
    const ParallelSimConfig& config) {
  if (laws.empty()) {
    throw std::invalid_argument("run_parallel_simulation: need laws");
  }
  if (config.job_count == 0 || !(config.horizon_s > 0.0) ||
      !(config.link_capacity_mbps > 0.0) ||
      !(config.checkpoint_size_mb > 0.0)) {
    throw std::invalid_argument("run_parallel_simulation: bad config");
  }

  const double dedicated_s =
      config.checkpoint_size_mb / config.link_capacity_mbps;

  numerics::Rng master(config.seed);
  std::vector<JobState> jobs(config.job_count);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    JobState& job = jobs[j];
    job.law = laws[j % laws.size()];
    job.rng = master.split();
    // Fit the job's availability model from a sampled history of its own
    // machine (what the monitor would have recorded).
    std::vector<double> history(config.train_count);
    for (auto& h : history) h = job.law->sample(job.rng);
    core::AdaptivePlannerOptions planner_opts;
    planner_opts.optimizer = config.optimizer;
    planner_opts.initial_cost_s = dedicated_s;
    planner_opts.cost_smoothing = config.cost_smoothing;
    job.planner.emplace(core::Planner::fit_model(history, config.family),
                        planner_opts);
    job.planner->on_placement(0.0);

    job.period_end = job.law->sample(job.rng);
    job.phase = Phase::kTransferring;
    job.remaining_mb = config.checkpoint_size_mb;
    job.transfer_is_checkpoint = false;
    job.transfer_started = 0.0;
  }

  const auto begin_transfer = [&](JobState& job, double now,
                                  bool is_checkpoint, double pending_work) {
    job.phase = Phase::kTransferring;
    job.remaining_mb = config.checkpoint_size_mb;
    job.transfer_is_checkpoint = is_checkpoint;
    job.transfer_started = now;
    job.pending_work_s = pending_work;
  };

  const auto begin_work = [&](JobState& job, double now) {
    const double t_opt = job.planner->next_interval();
    job.phase = Phase::kWorking;
    job.work_started = now;
    job.work_end = now + t_opt;
  };

  const auto evict = [&](JobState& job, double now) {
    if (job.phase == Phase::kTransferring) {
      job.stats.transfer_time_s += now - job.transfer_started;
      job.stats.moved_mb += config.checkpoint_size_mb - job.remaining_mb;
      ++job.stats.transfers_interrupted;
      if (job.transfer_is_checkpoint) {
        job.stats.lost_work_s += job.pending_work_s;
      }
    } else {
      job.stats.lost_work_s += now - job.work_started;
    }
    ++job.stats.evictions;
    job.planner->on_eviction();
    // New availability period begins immediately (back-to-back placements;
    // the matchmaker always has another idle machine of the same flavor).
    job.planner->on_placement(0.0);
    job.period_end = now + job.law->sample(job.rng);
    begin_transfer(job, now, /*is_checkpoint=*/false, 0.0);
  };

  double now = 0.0;
  ParallelSimResult result;
  result.horizon_s = config.horizon_s;

  while (now < config.horizon_s - kEps) {
    std::size_t active = 0;
    for (const auto& job : jobs) {
      if (job.phase == Phase::kTransferring) ++active;
    }
    const double share =
        config.link_capacity_mbps / std::max<std::size_t>(active, 1);

    // Earliest next event.
    double dt = config.horizon_s - now;
    for (const auto& job : jobs) {
      dt = std::min(dt, job.period_end - now);
      if (job.phase == Phase::kTransferring) {
        dt = std::min(dt, job.remaining_mb / share);
      } else {
        dt = std::min(dt, job.work_end - now);
      }
    }
    dt = std::max(dt, 0.0);

    // Advance transfers through the interval.
    for (auto& job : jobs) {
      if (job.phase == Phase::kTransferring) {
        job.remaining_mb = std::max(0.0, job.remaining_mb - share * dt);
      }
    }
    now += dt;
    if (now >= config.horizon_s - kEps) break;

    // Process all due events. Evictions take precedence over completions at
    // the same instant (the machine is gone).
    for (auto& job : jobs) {
      if (now >= job.period_end - kEps) {
        evict(job, now);
        continue;
      }
      if (job.phase == Phase::kTransferring && job.remaining_mb <= kEps) {
        const double duration = now - job.transfer_started;
        job.stats.transfer_time_s += duration;
        job.stats.moved_mb += config.checkpoint_size_mb;
        ++job.stats.transfers_completed;
        job.stats.stretch_sum += duration / dedicated_s;
        job.planner->on_transfer_measured(duration);
        if (job.transfer_is_checkpoint) {
          job.stats.useful_work_s += job.pending_work_s;
        }
        begin_work(job, now);
      } else if (job.phase == Phase::kWorking && now >= job.work_end - kEps) {
        job.planner->on_work_completed(now - job.work_started);
        begin_transfer(job, now, /*is_checkpoint=*/true,
                       now - job.work_started);
      }
    }
  }

  result.jobs.reserve(jobs.size());
  for (auto& job : jobs) result.jobs.push_back(job.stats);
  return result;
}

}  // namespace harvest::sim
