#include "harvest/sim/experiment.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace harvest::sim {

std::vector<double> ExperimentResult::efficiencies() const {
  std::vector<double> out;
  out.reserve(machines.size());
  for (const auto& m : machines) out.push_back(m.sim.efficiency());
  return out;
}

std::vector<double> ExperimentResult::network_mbs() const {
  std::vector<double> out;
  out.reserve(machines.size());
  for (const auto& m : machines) out.push_back(m.sim.network_mb);
  return out;
}

ExperimentResult run_trace_experiment(
    const std::vector<trace::AvailabilityTrace>& traces,
    core::ModelFamily family, const ExperimentConfig& config,
    util::ThreadPool* pool) {
  if (!(config.checkpoint_cost_s >= 0.0)) {
    throw std::invalid_argument("run_trace_experiment: cost >= 0");
  }
  core::IntervalCosts costs;
  costs.checkpoint = config.checkpoint_cost_s;
  costs.recovery = config.checkpoint_cost_s;  // paper: C == R

  ExperimentResult result;
  result.machines.reserve(traces.size());
  std::mutex result_mutex;

  const auto run_one = [&](std::size_t i) {
    const trace::AvailabilityTrace& tr = traces[i];
    if (tr.size() < config.train_count + 1) {
      std::lock_guard lock(result_mutex);
      result.skipped.push_back(tr.machine_id);
      return;
    }
    const trace::TraceSplit split = split_train_test(tr, config.train_count);
    dist::DistributionPtr model;
    try {
      model = core::Planner::fit_model(split.train, family);
    } catch (const std::exception&) {
      std::lock_guard lock(result_mutex);
      result.skipped.push_back(tr.machine_id);
      return;
    }
    core::ScheduleOptions sched_opts;
    sched_opts.optimizer = config.optimizer;
    sched_opts.condition_on_age = config.condition_on_age;
    core::CheckpointSchedule schedule =
        core::Planner::make_schedule(model, costs, sched_opts);
    MachineOutcome outcome;
    outcome.machine_id = tr.machine_id;
    outcome.fitted_family = model->name();
    outcome.sim = simulate_job_on_trace(split.test, schedule, config.job);
    std::lock_guard lock(result_mutex);
    result.machines.push_back(std::move(outcome));
  };

  if (pool != nullptr) {
    util::parallel_for_each(*pool, traces.size(), run_one);
    // Parallel completion order is nondeterministic; restore trace order so
    // paired t-tests across families line up machine-by-machine.
    std::sort(result.machines.begin(), result.machines.end(),
              [](const MachineOutcome& a, const MachineOutcome& b) {
                return a.machine_id < b.machine_id;
              });
    std::sort(result.skipped.begin(), result.skipped.end());
  } else {
    for (std::size_t i = 0; i < traces.size(); ++i) run_one(i);
  }
  return result;
}

}  // namespace harvest::sim
