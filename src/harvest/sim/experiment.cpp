#include "harvest/sim/experiment.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "harvest/obs/timer.hpp"
#include "harvest/sim/sweep.hpp"

namespace harvest::sim {
namespace {

/// Registry handles for one (family, experiment) run, resolved once before
/// the per-machine fan-out so workers only touch atomics.
struct ExperimentMetrics {
  std::array<obs::Histogram*, 6> phase = {};  ///< indexed by SimEventKind
  obs::Histogram* efficiency = nullptr;
  obs::Histogram* machine_wall_s = nullptr;
  obs::Counter* machines = nullptr;
  obs::Counter* checkpoints_completed = nullptr;
  obs::Counter* checkpoints_interrupted = nullptr;
  obs::Counter* recoveries_completed = nullptr;
  obs::Counter* recoveries_interrupted = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Gauge* mb_moved = nullptr;
  obs::Gauge* useful_work_s = nullptr;
  obs::Gauge* total_time_s = nullptr;

  ExperimentMetrics(obs::MetricsRegistry& reg, const std::string& prefix) {
    for (const SimEventKind kind :
         {SimEventKind::kRecovery, SimEventKind::kRecoveryInterrupted,
          SimEventKind::kWork, SimEventKind::kWorkInterrupted,
          SimEventKind::kCheckpoint, SimEventKind::kCheckpointInterrupted}) {
      phase[static_cast<std::size_t>(kind)] = &reg.histogram(
          prefix + ".phase." + std::string(to_string(kind)) + "_s");
    }
    // Efficiency lives in [0, 1]; linear 2 %-wide buckets resolve the
    // paper's reported differences (~0.01 absolute).
    std::vector<double> eff_bounds;
    for (int i = 1; i <= 50; ++i) eff_bounds.push_back(0.02 * i);
    efficiency = &reg.histogram(prefix + ".machine_efficiency",
                                std::move(eff_bounds));
    machine_wall_s = &reg.histogram(prefix + ".machine_wall_s");
    machines = &reg.counter(prefix + ".machines");
    checkpoints_completed = &reg.counter(prefix + ".checkpoints_completed");
    checkpoints_interrupted =
        &reg.counter(prefix + ".checkpoints_interrupted");
    recoveries_completed = &reg.counter(prefix + ".recoveries_completed");
    recoveries_interrupted =
        &reg.counter(prefix + ".recoveries_interrupted");
    evictions = &reg.counter(prefix + ".evictions");
    mb_moved = &reg.gauge(prefix + ".mb_moved");
    useful_work_s = &reg.gauge(prefix + ".useful_work_s");
    total_time_s = &reg.gauge(prefix + ".total_time_s");
  }

  void observe(const JobSimResult& sim) const {
    machines->add();
    checkpoints_completed->add(sim.checkpoints_completed);
    checkpoints_interrupted->add(sim.checkpoints_interrupted);
    recoveries_completed->add(sim.recoveries_completed);
    recoveries_interrupted->add(sim.recoveries_interrupted);
    evictions->add(sim.evictions);
    mb_moved->add(sim.network_mb);
    useful_work_s->add(sim.useful_work);
    total_time_s->add(sim.total_time);
    efficiency->observe(sim.efficiency());
    for (const auto& ev : sim.events) {
      phase[static_cast<std::size_t>(ev.kind)]->observe(ev.duration_s);
    }
  }
};

}  // namespace

std::vector<double> ExperimentResult::efficiencies() const {
  std::vector<double> out;
  out.reserve(machines.size());
  for (const auto& m : machines) out.push_back(m.sim.efficiency());
  return out;
}

std::vector<double> ExperimentResult::network_mbs() const {
  std::vector<double> out;
  out.reserve(machines.size());
  for (const auto& m : machines) out.push_back(m.sim.network_mb);
  return out;
}

ExperimentResult run_trace_experiment(
    const std::vector<trace::AvailabilityTrace>& traces,
    core::ModelFamily family, const ExperimentConfig& config,
    util::ThreadPool* pool) {
  if (!(config.checkpoint_cost_s >= 0.0)) {
    throw std::invalid_argument("run_trace_experiment: cost >= 0");
  }
  core::IntervalCosts costs;
  costs.checkpoint = config.checkpoint_cost_s;
  costs.recovery = config.checkpoint_cost_s;  // paper: C == R

  ExperimentResult result;
  result.machines.reserve(traces.size());
  std::mutex result_mutex;

  // Per-family metric namespace, e.g. "sim.2.phase.checkpoint_s".
  std::unique_ptr<ExperimentMetrics> metrics;
  if (config.metrics != nullptr) {
    const std::string base =
        config.metrics_prefix.empty() ? "sim" : config.metrics_prefix;
    metrics = std::make_unique<ExperimentMetrics>(
        *config.metrics, base + '.' + family_letter(family));
  }
  JobSimConfig job_config = config.job;
  // Phase histograms are fed from the event timeline, so recording must be
  // on while metrics are collected (timelines are dropped afterwards
  // unless the caller asked for them).
  if (metrics != nullptr) job_config.record_events = true;

  const auto run_one = [&](std::size_t i) {
    const trace::AvailabilityTrace& tr = traces[i];
    if (tr.size() < config.train_count + 1) {
      std::lock_guard lock(result_mutex);
      result.skipped.push_back(tr.machine_id);
      return;
    }
    const trace::TraceSplit split = split_train_test(tr, config.train_count);
    dist::DistributionPtr model;
    try {
      model = core::Planner::fit_model(split.train, family);
    } catch (const std::exception&) {
      std::lock_guard lock(result_mutex);
      result.skipped.push_back(tr.machine_id);
      return;
    }
    core::ScheduleOptions sched_opts;
    sched_opts.optimizer = config.optimizer;
    sched_opts.condition_on_age = config.condition_on_age;
    core::CheckpointSchedule schedule =
        core::Planner::make_schedule(model, costs, sched_opts);
    MachineOutcome outcome;
    outcome.machine_id = tr.machine_id;
    outcome.fitted_family = model->name();
    {
      obs::ScopedTimer timer(metrics ? metrics->machine_wall_s : nullptr);
      outcome.sim = simulate_job_on_trace(split.test, schedule, job_config);
    }
    if (metrics != nullptr) {
      metrics->observe(outcome.sim);
      if (!config.job.record_events) outcome.sim.events.clear();
    }
    std::lock_guard lock(result_mutex);
    result.machines.push_back(std::move(outcome));
  };

  if (pool != nullptr) {
    util::parallel_for_each(*pool, traces.size(), run_one);
    // Parallel completion order is nondeterministic; restore trace order so
    // paired t-tests across families line up machine-by-machine.
    std::sort(result.machines.begin(), result.machines.end(),
              [](const MachineOutcome& a, const MachineOutcome& b) {
                return a.machine_id < b.machine_id;
              });
    std::sort(result.skipped.begin(), result.skipped.end());
  } else {
    for (std::size_t i = 0; i < traces.size(); ++i) run_one(i);
  }
  return result;
}

}  // namespace harvest::sim
