// Coupled simulation of N jobs checkpointing over ONE shared link — the
// model the paper flags as future work in §5.2: "for a parallel job, where
// multiple jobs may be checkpointing simultaneously, the network load
// savings are likely to improve application efficiency since network
// collisions will lengthen the amount of time necessary for a checkpoint."
//
// Each job runs the recovery→work→checkpoint cycle on its own volatile
// machine; every transfer shares the link fairly (processor sharing), so a
// burst of simultaneous checkpoints stretches ALL of them — which extends
// the window in which an eviction can destroy the work, which causes more
// recoveries, which add more traffic. The feedback loop the paper
// anticipates is simulated directly by a discrete-event engine.
//
// Each job re-plans with its model's T_opt at the current machine uptime,
// using its last *measured* transfer duration as the cost estimate (the
// same adaptive scheme as the live experiment).
#pragma once

#include <cstdint>
#include <vector>

#include "harvest/core/planner.hpp"
#include "harvest/dist/distribution.hpp"

namespace harvest::sim {

struct ParallelSimConfig {
  std::size_t job_count = 8;
  double horizon_s = 24.0 * 3600.0;  ///< simulated wall-clock
  double checkpoint_size_mb = 500.0;
  /// Link capacity in MB/s; one dedicated 500 MB transfer at 4.55 MB/s
  /// takes ~110 s (the paper's campus configuration).
  double link_capacity_mbps = 500.0 / 110.0;
  core::ModelFamily family = core::ModelFamily::kWeibull;
  /// History observations per machine used to fit the model.
  std::size_t train_count = 25;
  /// Cost-estimate smoothing for the jobs' AdaptivePlanner: 1.0 tracks the
  /// latest measured transfer only (the paper's live behavior); smaller
  /// values average over collisions, which stabilizes T_opt under heavy
  /// link contention.
  double cost_smoothing = 1.0;
  core::OptimizerOptions optimizer;
  std::uint64_t seed = 1;
};

struct ParallelJobStats {
  double useful_work_s = 0.0;
  double lost_work_s = 0.0;
  double transfer_time_s = 0.0;  ///< recovery + checkpoint wire time
  double moved_mb = 0.0;
  std::size_t transfers_completed = 0;
  std::size_t transfers_interrupted = 0;
  std::size_t evictions = 0;
  /// Σ (actual duration / dedicated duration) over completed transfers:
  /// the collision stretch this job experienced.
  double stretch_sum = 0.0;
};

struct ParallelSimResult {
  std::vector<ParallelJobStats> jobs;
  double horizon_s = 0.0;

  /// Aggregate efficiency: total useful work / (jobs × horizon).
  [[nodiscard]] double efficiency() const;
  [[nodiscard]] double total_moved_mb() const;
  /// Mean stretch of completed transfers (1.0 = never collided).
  [[nodiscard]] double mean_stretch() const;
  [[nodiscard]] std::size_t total_evictions() const;
};

/// Run the coupled simulation. Machines are drawn per job from `laws`
/// (cycled if fewer laws than jobs); histories for fitting are sampled from
/// the same laws.
[[nodiscard]] ParallelSimResult run_parallel_simulation(
    const std::vector<dist::DistributionPtr>& laws,
    const ParallelSimConfig& config);

}  // namespace harvest::sim
