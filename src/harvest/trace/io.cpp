#include "harvest/trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

namespace harvest::trace {
namespace {

struct Row {
  double timestamp;
  double duration;
};

void fail_at(std::size_t line, const std::string& why) {
  std::ostringstream msg;
  msg << "traces csv, line " << line << ": " << why;
  throw std::runtime_error(msg.str());
}

}  // namespace

std::vector<AvailabilityTrace> read_traces_csv(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(in, line)) {
    throw std::runtime_error("traces csv: empty input");
  }
  ++lineno;
  if (line.find("machine_id") == std::string::npos) {
    fail_at(lineno, "missing header 'machine_id,timestamp,duration'");
  }
  std::map<std::string, std::vector<Row>> by_machine;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string id, ts_str, dur_str;
    if (!std::getline(cells, id, ',') || !std::getline(cells, ts_str, ',') ||
        !std::getline(cells, dur_str)) {
      fail_at(lineno, "expected 3 comma-separated fields");
    }
    try {
      const double ts = std::stod(ts_str);
      const double dur = std::stod(dur_str);
      by_machine[id].push_back(Row{ts, dur});
    } catch (const std::exception&) {
      fail_at(lineno, "non-numeric timestamp or duration");
    }
  }
  std::vector<AvailabilityTrace> traces;
  traces.reserve(by_machine.size());
  for (auto& [id, rows] : by_machine) {
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.timestamp < b.timestamp; });
    AvailabilityTrace t;
    t.machine_id = id;
    t.durations.reserve(rows.size());
    t.timestamps.reserve(rows.size());
    for (const Row& r : rows) {
      t.timestamps.push_back(r.timestamp);
      t.durations.push_back(r.duration);
    }
    t.validate();
    traces.push_back(std::move(t));
  }
  return traces;
}

std::vector<AvailabilityTrace> load_traces_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_traces_csv: cannot open " + path);
  return read_traces_csv(in);
}

void write_traces_csv(std::ostream& out,
                      const std::vector<AvailabilityTrace>& traces) {
  // 17 significant digits: doubles survive the round trip bit-exactly.
  out << std::setprecision(17);
  out << "machine_id,timestamp,duration\n";
  for (const auto& t : traces) {
    for (std::size_t i = 0; i < t.durations.size(); ++i) {
      const double ts = t.timestamps.empty() ? static_cast<double>(i)
                                             : t.timestamps[i];
      out << t.machine_id << "," << ts << "," << t.durations[i] << "\n";
    }
  }
}

void save_traces_csv(const std::string& path,
                     const std::vector<AvailabilityTrace>& traces) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_traces_csv: cannot open " + path);
  write_traces_csv(out, traces);
  if (!out) throw std::runtime_error("save_traces_csv: write failed " + path);
}

}  // namespace harvest::trace
