#include "harvest/trace/synthetic.hpp"

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/weibull.hpp"
#include "harvest/numerics/rng.hpp"

namespace harvest::trace {
namespace {

dist::DistributionPtr draw_ground_truth(const PoolSpec& spec,
                                        numerics::Rng& rng) {
  if (rng.uniform() < spec.bimodal_fraction) {
    const double short_mean = rng.uniform(spec.bimodal_short_mean_min_s,
                                          spec.bimodal_short_mean_max_s);
    const double long_mean = rng.uniform(spec.bimodal_long_mean_min_s,
                                         spec.bimodal_long_mean_max_s);
    const double p_short = spec.bimodal_short_weight;
    return std::make_shared<dist::Hyperexponential>(
        std::vector<double>{p_short, 1.0 - p_short},
        std::vector<double>{1.0 / short_mean, 1.0 / long_mean});
  }
  const double shape = rng.uniform(spec.shape_min, spec.shape_max);
  const double log_scale =
      rng.uniform(std::log(spec.scale_min_s), std::log(spec.scale_max_s));
  return std::make_shared<dist::Weibull>(shape, std::exp(log_scale));
}

}  // namespace

std::vector<SyntheticMachine> generate_pool(const PoolSpec& spec) {
  if (spec.machine_count == 0 || spec.durations_per_machine == 0) {
    throw std::invalid_argument("generate_pool: empty spec");
  }
  if (!(spec.shape_min > 0.0 && spec.shape_max >= spec.shape_min)) {
    throw std::invalid_argument("generate_pool: bad shape range");
  }
  if (!(spec.scale_min_s > 0.0 && spec.scale_max_s >= spec.scale_min_s)) {
    throw std::invalid_argument("generate_pool: bad scale range");
  }
  if (!(spec.bimodal_fraction >= 0.0 && spec.bimodal_fraction <= 1.0)) {
    throw std::invalid_argument("generate_pool: bimodal_fraction in [0,1]");
  }

  numerics::Rng master(spec.seed);
  std::vector<SyntheticMachine> pool;
  pool.reserve(spec.machine_count);
  for (std::size_t m = 0; m < spec.machine_count; ++m) {
    numerics::Rng rng = master.split();
    SyntheticMachine machine;
    machine.ground_truth = draw_ground_truth(spec, rng);

    std::ostringstream id;
    id << "m";
    id.fill('0');
    id.width(4);
    id << m;
    machine.trace.machine_id = id.str();

    const double gap_rate =
        1.0 / (spec.gap_mean_multiple * machine.ground_truth->mean());
    double clock = 0.0;
    machine.trace.durations.reserve(spec.durations_per_machine);
    machine.trace.timestamps.reserve(spec.durations_per_machine);
    for (std::size_t i = 0; i < spec.durations_per_machine; ++i) {
      const double d = machine.ground_truth->sample(rng);
      machine.trace.timestamps.push_back(clock);
      machine.trace.durations.push_back(d);
      clock += d + rng.exponential(gap_rate);
    }
    machine.trace.validate();
    pool.push_back(std::move(machine));
  }
  return pool;
}

AvailabilityTrace sample_trace(const dist::Distribution& law,
                               std::size_t count, std::uint64_t seed,
                               const std::string& machine_id) {
  if (count == 0) throw std::invalid_argument("sample_trace: count >= 1");
  numerics::Rng rng(seed);
  AvailabilityTrace t;
  t.machine_id = machine_id;
  t.durations.reserve(count);
  t.timestamps.reserve(count);
  double clock = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double d = law.sample(rng);
    t.timestamps.push_back(clock);
    t.durations.push_back(d);
    clock += d;
  }
  t.validate();
  return t;
}

}  // namespace harvest::trace
