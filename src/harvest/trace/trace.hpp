// Availability traces: what the paper's Condor occupancy monitor records.
// For each machine, a chronological sequence of availability durations (how
// long a sensor job ran before eviction) with the UTC timestamp at which
// each occupancy began.
#pragma once

#include <string>
#include <vector>

namespace harvest::trace {

struct AvailabilityTrace {
  std::string machine_id;
  /// Occupancy durations in seconds, chronological.
  std::vector<double> durations;
  /// UTC start time of each occupancy, seconds; same length as durations
  /// (may be empty when timestamps are unknown).
  std::vector<double> timestamps;

  [[nodiscard]] std::size_t size() const { return durations.size(); }
  [[nodiscard]] bool empty() const { return durations.empty(); }

  /// Throws std::invalid_argument on negative/non-finite durations,
  /// timestamp length mismatch, or non-monotone timestamps.
  void validate() const;
};

/// Chronological prefix/suffix split: the paper trains on the first 25
/// values and evaluates on the rest.
struct TraceSplit {
  std::vector<double> train;
  std::vector<double> test;
};

/// Splits after `train_count` values. Throws if the trace has fewer than
/// train_count + 1 values (an empty experimental set is useless).
[[nodiscard]] TraceSplit split_train_test(const AvailabilityTrace& trace,
                                          std::size_t train_count = 25);

}  // namespace harvest::trace
