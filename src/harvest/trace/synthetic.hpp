// Synthetic Condor-pool generator — the substitute for the paper's
// proprietary 18-month University of Wisconsin traces (see DESIGN.md §2).
//
// Each machine draws a ground-truth availability law:
//  * majority: heavy-tailed Weibull, shape ~ U[shape_min, shape_max] and
//    scale log-uniform over [scale_min, scale_max] — bracketing the paper's
//    published exemplar fit (shape 0.43, scale 3409 s);
//  * the rest: 2-phase hyperexponential "bimodal" machines (short office-
//    hours occupancies mixed with long overnight ones), which is the other
//    shape the paper's related work reports for desktop availability.
//
// The generator materializes, per machine, a chronological trace of
// occupancy durations with timestamps (inter-occupancy gaps are exponential
// — the machine is busy with its owner between occupancies).
#pragma once

#include <cstdint>
#include <vector>

#include "harvest/dist/distribution.hpp"
#include "harvest/trace/trace.hpp"

namespace harvest::trace {

struct PoolSpec {
  std::size_t machine_count = 200;
  /// Durations recorded per machine (the paper keeps machines with "a
  /// sufficient number" of observations; training takes the first 25).
  std::size_t durations_per_machine = 150;
  std::uint64_t seed = 20050917;  // CLUSTER 2005 conference date

  // Weibull ground-truth parameter ranges. Calibrated (together with the
  // bimodal parameters below) so the standard pool reproduces the paper's
  // efficiency magnitudes (Table 1: ~0.75 at C=50 falling to ~0.35 at
  // C=1500) and its >=30 % 2-phase-hyperexponential bandwidth saving.
  double shape_min = 0.30;
  double shape_max = 0.70;
  double scale_min_s = 150.0;
  double scale_max_s = 4500.0;  // paper's exemplar scale 3409 s sits inside

  /// Fraction of machines whose ground truth is a 2-phase hyperexponential.
  /// Half-and-half reproduces the paper's Table 3 ordering (exponential
  /// worst, hyperexponentials most parsimonious, Weibull in between): real
  /// desktop pools mix "wear-out-like" heavy-tailed machines with strongly
  /// bimodal office machines.
  double bimodal_fraction = 0.5;
  /// Bimodal machines: short-phase mean range (seconds).
  double bimodal_short_mean_min_s = 90.0;
  double bimodal_short_mean_max_s = 600.0;
  /// Bimodal machines: long-phase mean range (seconds).
  double bimodal_long_mean_min_s = 5400.0;
  double bimodal_long_mean_max_s = 21600.0;
  /// Bimodal machines: probability of the short phase.
  double bimodal_short_weight = 0.65;

  /// Mean owner-busy gap between occupancies, as a multiple of the
  /// machine's mean availability (used only for timestamps).
  double gap_mean_multiple = 0.5;
};

struct SyntheticMachine {
  dist::DistributionPtr ground_truth;  ///< law the trace was sampled from
  AvailabilityTrace trace;
};

/// Generate a reproducible pool. Machine ids are "m0000", "m0001", ….
[[nodiscard]] std::vector<SyntheticMachine> generate_pool(const PoolSpec& spec);

/// Single synthetic trace of `count` durations drawn i.i.d. from `law`
/// (used by the paper's Table 2 experiment: 5000 draws from
/// Weibull(0.43, 3409)).
[[nodiscard]] AvailabilityTrace sample_trace(const dist::Distribution& law,
                                             std::size_t count,
                                             std::uint64_t seed,
                                             const std::string& machine_id);

}  // namespace harvest::trace
