// CSV persistence for availability traces, so the pipeline can run on real
// monitor output as well as synthetic pools. Format (header required):
//
//   machine_id,timestamp,duration
//   c001,1049155200,4211.5
//   ...
//
// Rows may appear in any order; they are grouped by machine_id and sorted by
// timestamp on load.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harvest/trace/trace.hpp"

namespace harvest::trace {

/// Parse traces from a CSV stream. Throws std::runtime_error with a line
/// number on malformed input.
[[nodiscard]] std::vector<AvailabilityTrace> read_traces_csv(std::istream& in);

/// Load traces from a CSV file; throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<AvailabilityTrace> load_traces_csv(
    const std::string& path);

/// Serialize traces to CSV (with header).
void write_traces_csv(std::ostream& out,
                      const std::vector<AvailabilityTrace>& traces);

/// Save traces to a CSV file; throws std::runtime_error on I/O failure.
void save_traces_csv(const std::string& path,
                     const std::vector<AvailabilityTrace>& traces);

}  // namespace harvest::trace
