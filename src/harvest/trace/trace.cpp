#include "harvest/trace/trace.hpp"

#include <cmath>
#include <stdexcept>

namespace harvest::trace {

void AvailabilityTrace::validate() const {
  for (double d : durations) {
    if (!(d >= 0.0) || !std::isfinite(d)) {
      throw std::invalid_argument(
          "AvailabilityTrace: durations must be finite and >= 0");
    }
  }
  if (!timestamps.empty()) {
    if (timestamps.size() != durations.size()) {
      throw std::invalid_argument(
          "AvailabilityTrace: timestamps/durations length mismatch");
    }
    for (std::size_t i = 1; i < timestamps.size(); ++i) {
      if (timestamps[i] < timestamps[i - 1]) {
        throw std::invalid_argument(
            "AvailabilityTrace: timestamps must be non-decreasing");
      }
    }
  }
}

TraceSplit split_train_test(const AvailabilityTrace& trace,
                            std::size_t train_count) {
  if (trace.size() < train_count + 1) {
    throw std::invalid_argument(
        "split_train_test: trace too short for requested training size");
  }
  TraceSplit split;
  split.train.assign(trace.durations.begin(),
                     trace.durations.begin() + static_cast<long>(train_count));
  split.test.assign(trace.durations.begin() + static_cast<long>(train_count),
                    trace.durations.end());
  return split;
}

}  // namespace harvest::trace
