// Descriptive statistics and filtering for availability traces: what an
// operator looks at before trusting fitted models — how many machines have
// enough observations, how heterogeneous the pool is, how heavy the tails
// are (coefficient of variation > 1 flags super-exponential variability).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harvest/trace/trace.hpp"

namespace harvest::trace {

struct TraceSummary {
  std::string machine_id;
  std::size_t observations = 0;
  double mean_s = 0.0;
  double median_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  /// Coefficient of variation (stddev / mean); 1 for an exponential,
  /// > 1 for the heavy-tailed behavior the paper models.
  double cv = 0.0;
  double total_observed_s = 0.0;
};

/// Per-trace summary; requires >= 2 observations (cv needs a variance).
[[nodiscard]] TraceSummary summarize_trace(const AvailabilityTrace& trace);

struct PoolSummary {
  std::size_t machine_count = 0;
  std::size_t total_observations = 0;
  double mean_of_means_s = 0.0;
  double median_of_means_s = 0.0;
  double mean_cv = 0.0;
  /// Fraction of machines with cv > 1 (heavier than exponential).
  double heavy_tailed_fraction = 0.0;
};

/// Aggregate over all traces with >= 2 observations.
[[nodiscard]] PoolSummary summarize_pool(
    const std::vector<AvailabilityTrace>& traces);

/// Keep only traces with at least `min_observations` durations (the paper
/// keeps machines the Condor scheduler chose "a sufficient number of
/// times").
[[nodiscard]] std::vector<AvailabilityTrace> filter_min_observations(
    std::vector<AvailabilityTrace> traces, std::size_t min_observations);

/// Restrict each trace to occupancies whose timestamp lies in
/// [start, end); traces left empty are dropped. Traces without timestamps
/// are kept untouched.
[[nodiscard]] std::vector<AvailabilityTrace> filter_time_window(
    std::vector<AvailabilityTrace> traces, double start, double end);

}  // namespace harvest::trace
