#include "harvest/trace/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harvest/stats/summary.hpp"

namespace harvest::trace {

TraceSummary summarize_trace(const AvailabilityTrace& trace) {
  if (trace.size() < 2) {
    throw std::invalid_argument("summarize_trace: need >= 2 observations");
  }
  stats::RunningStats rs;
  for (double d : trace.durations) rs.add(d);
  TraceSummary s;
  s.machine_id = trace.machine_id;
  s.observations = trace.size();
  s.mean_s = rs.mean();
  s.median_s = stats::median_of(trace.durations);
  s.min_s = rs.min();
  s.max_s = rs.max();
  s.cv = (rs.mean() > 0.0) ? rs.stddev() / rs.mean() : 0.0;
  s.total_observed_s = rs.sum();
  return s;
}

PoolSummary summarize_pool(const std::vector<AvailabilityTrace>& traces) {
  PoolSummary pool;
  std::vector<double> means;
  for (const auto& t : traces) {
    if (t.size() < 2) continue;
    const TraceSummary s = summarize_trace(t);
    ++pool.machine_count;
    pool.total_observations += s.observations;
    means.push_back(s.mean_s);
    pool.mean_cv += s.cv;
    if (s.cv > 1.0) pool.heavy_tailed_fraction += 1.0;
  }
  if (pool.machine_count > 0) {
    pool.mean_cv /= static_cast<double>(pool.machine_count);
    pool.heavy_tailed_fraction /= static_cast<double>(pool.machine_count);
    pool.mean_of_means_s = stats::mean_of(means);
    pool.median_of_means_s = stats::median_of(means);
  }
  return pool;
}

std::vector<AvailabilityTrace> filter_min_observations(
    std::vector<AvailabilityTrace> traces, std::size_t min_observations) {
  std::erase_if(traces, [&](const AvailabilityTrace& t) {
    return t.size() < min_observations;
  });
  return traces;
}

std::vector<AvailabilityTrace> filter_time_window(
    std::vector<AvailabilityTrace> traces, double start, double end) {
  if (!(end > start)) {
    throw std::invalid_argument("filter_time_window: end must be > start");
  }
  for (auto& t : traces) {
    if (t.timestamps.empty()) continue;
    AvailabilityTrace kept;
    kept.machine_id = t.machine_id;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t.timestamps[i] >= start && t.timestamps[i] < end) {
        kept.durations.push_back(t.durations[i]);
        kept.timestamps.push_back(t.timestamps[i]);
      }
    }
    t = std::move(kept);
  }
  std::erase_if(traces,
                [](const AvailabilityTrace& t) { return t.empty(); });
  return traces;
}

}  // namespace harvest::trace
