#include "harvest/obs/quantile_sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace harvest::obs {
namespace {

constexpr char kMagic[4] = {'q', 's', 'k', '1'};

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_i32(std::string& out, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

void append_double(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  std::uint64_t read_u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int32_t read_i32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return static_cast<std::int32_t>(v);
  }

  double read_double() { return std::bit_cast<double>(read_u64()); }

  void read_magic() {
    require(4);
    if (std::memcmp(bytes_.data() + pos_, kMagic, 4) != 0) {
      throw std::invalid_argument("QuantileSketch::decode: bad magic");
    }
    pos_ += 4;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void require(std::size_t n) {
    if (bytes_.size() - pos_ < n) {
      throw std::invalid_argument("QuantileSketch::decode: truncated input");
    }
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

QuantileSketch::QuantileSketch(double relative_error)
    : alpha_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      log_gamma_(std::log(gamma_)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!(relative_error > 0.0) || !(relative_error < 1.0)) {
    throw std::invalid_argument(
        "QuantileSketch: relative_error must be in (0, 1)");
  }
}

std::int32_t QuantileSketch::bucket_index(double v) const {
  // v > 0 by the caller's check. clamp keeps pathological magnitudes from
  // overflowing the 32-bit index space.
  const double raw = std::ceil(std::log(v) / log_gamma_);
  return static_cast<std::int32_t>(std::clamp(raw, -2e9, 2e9));
}

double QuantileSketch::bucket_value(std::int32_t index) const {
  // Midpoint (harmonic) of the bucket (gamma^(i-1), gamma^i]: guarantees
  // |est - v| / v <= alpha for every v in the bucket.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::add(double v, std::uint64_t n) {
  if (std::isnan(v) || n == 0) return;
  if (v <= 0.0 || !std::isfinite(v)) {
    if (!std::isfinite(v)) return;  // +inf has no bucket; drop it
    zero_count_ += n;
  } else {
    buckets_[bucket_index(v)] += n;
  }
  count_ += n;
  sum_ += v * static_cast<double>(n);
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (alpha_ != other.alpha_) {
    throw std::invalid_argument(
        "QuantileSketch::merge: relative errors differ");
  }
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  zero_count_ += other.zero_count_;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::min() const { return count_ > 0 ? min_ : 0.0; }

double QuantileSketch::max() const { return count_ > 0 ? max_ : 0.0; }

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  if (rank < zero_count_) return 0.0;
  std::uint64_t cumulative = zero_count_;
  for (const auto& [index, n] : buckets_) {
    cumulative += n;
    if (cumulative > rank) {
      // Clamp to the observed extremes so tiny buckets at the edges never
      // report values outside [min, max].
      return std::clamp(bucket_value(index), min_, max_);
    }
  }
  return max_;
}

void QuantileSketch::clear() {
  buckets_.clear();
  count_ = 0;
  zero_count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::string QuantileSketch::encode() const {
  std::string out;
  out.reserve(4 + 8 * 5 + buckets_.size() * 12);
  out.append(kMagic, 4);
  append_double(out, alpha_);
  append_u64(out, count_);
  append_u64(out, zero_count_);
  append_double(out, min_);
  append_double(out, max_);
  append_u64(out, buckets_.size());
  for (const auto& [index, n] : buckets_) {
    append_i32(out, index);
    append_u64(out, n);
  }
  return out;
}

QuantileSketch QuantileSketch::decode(const std::string& bytes) {
  ByteReader r(bytes);
  r.read_magic();
  QuantileSketch sketch(r.read_double());
  sketch.count_ = r.read_u64();
  sketch.zero_count_ = r.read_u64();
  sketch.min_ = r.read_double();
  sketch.max_ = r.read_double();
  const std::uint64_t buckets = r.read_u64();
  std::int32_t prev_index = std::numeric_limits<std::int32_t>::min();
  for (std::uint64_t b = 0; b < buckets; ++b) {
    const std::int32_t index = r.read_i32();
    if (b > 0 && index <= prev_index) {
      throw std::invalid_argument(
          "QuantileSketch::decode: bucket indices not ascending");
    }
    prev_index = index;
    sketch.buckets_[index] = r.read_u64();
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("QuantileSketch::decode: trailing bytes");
  }
  // The exact sum is not encoded (see encode()); approximate it from the
  // bucket table so mean() stays within the relative-error bound.
  double sum = 0.0;
  for (const auto& [index, n] : sketch.buckets_) {
    sum += sketch.bucket_value(index) * static_cast<double>(n);
  }
  sketch.sum_ = sum;
  return sketch;
}

}  // namespace harvest::obs
