#include "harvest/obs/timer.hpp"

namespace harvest::obs {
namespace {
std::atomic<bool> g_timing_enabled{false};
}  // namespace

void set_timing_enabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool timing_enabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

}  // namespace harvest::obs
