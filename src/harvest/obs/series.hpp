// The temporal half of harvest::obs: periodic full-registry snapshots
// keyed by the producer's clock (simulated seconds for the simulators,
// wall/iteration time for a daemon). A RegistrySnapshot answers "where did
// the run end up"; a SnapshotSeries answers "when did it happen" — the
// checkpoint storms and recovery waves the paper cares about are temporal
// phenomena, invisible in an end-of-run aggregate.
//
// The series is a fixed-cadence, bounded ring of frames: maybe_sample()
// cuts a frame every `every_s` on the producer's clock, the ring keeps the
// newest `max_frames` frames (older ones are evicted and counted), and
// per-metric delta/rate extraction plus CSV/JSONL timeline export turn the
// ring into something a plotting script or a Prometheus scrape can use.
// Thread-safe: a daemon samples from its simulation loop while an HTTP
// listener serves the latest frame.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harvest/obs/metrics.hpp"

namespace harvest::obs {

/// One sampled frame: the full registry state at one instant.
struct SeriesFrame {
  double t_s = 0.0;  ///< sample time on the producer's clock
  RegistrySnapshot snapshot;

  /// {"t_s": ..., "metrics": <RegistrySnapshot::to_json()>}
  [[nodiscard]] std::string to_json() const;
};

/// One point of an extracted per-metric timeline: the raw value at t_s
/// plus the change since the previous surviving frame and its rate.
struct SeriesPoint {
  double t_s = 0.0;
  double value = 0.0;
  double delta = 0.0;  ///< value - previous frame's value (0 at the first)
  double rate = 0.0;   ///< delta / dt (0 at the first frame or dt == 0)
};

/// Retention policy for runs that outlive the ring: instead of silently
/// dropping the oldest frames, merge adjacent old frames so the series
/// keeps full resolution near "now" and a progressively coarser long tail.
/// Each merge keeps the LAST frame of the merged group — frames are
/// cumulative point-in-time snapshots, so the delta across a surviving
/// boundary equals the sum of the merged frames' deltas and
/// counter_series()/counter_rates()/gauge_series() stay exact (just
/// coarser) across compacted regions. Old survivors get re-merged each
/// time the ring refills, so a very long run decays geometrically: newest
/// `keep_recent` frames at cadence resolution, then ~stride×, ~stride²×,
/// ... coarser toward the beginning.
struct SeriesCompaction {
  /// Newest frames exempt from merging. 0 disables compaction (the ring
  /// falls back to plain oldest-first eviction). Must be < max_frames.
  std::size_t keep_recent = 0;
  /// Adjacent frames merged per group (>= 2) when compaction runs.
  std::size_t stride = 2;

  [[nodiscard]] bool enabled() const { return keep_recent > 0; }
};

class SnapshotSeries {
 public:
  static constexpr std::size_t kDefaultMaxFrames = 1024;

  /// `every_s` is the sampling cadence maybe_sample() enforces (must be
  /// > 0); `max_frames` bounds the ring (0 = unbounded); `compaction`
  /// (optional) merges old frames instead of evicting them when the ring
  /// fills — see SeriesCompaction.
  explicit SnapshotSeries(double every_s,
                          std::size_t max_frames = kDefaultMaxFrames,
                          SeriesCompaction compaction = {});

  /// Unconditionally cut a frame at `t_s` from `registry` (or a snapshot
  /// the caller already holds). Frames must be sampled in nondecreasing
  /// t_s order for delta extraction to be meaningful; the series does not
  /// enforce it.
  void sample(double t_s, const MetricsRegistry& registry);
  void sample(double t_s, RegistrySnapshot snapshot);

  /// Cut a frame iff `t_s` has reached the next cadence point (first call
  /// always samples). Returns true when a frame was cut. The next due time
  /// advances by whole multiples of every_s, so a slow producer that
  /// overshoots several periods cuts ONE frame, not a backlog.
  bool maybe_sample(double t_s, const MetricsRegistry& registry);

  /// Frames in sample order, oldest surviving first.
  [[nodiscard]] std::vector<SeriesFrame> frames() const;
  [[nodiscard]] std::optional<SeriesFrame> latest() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_frames() const { return max_frames_; }
  [[nodiscard]] double every_s() const { return every_s_; }
  /// Frames dropped with no surviving representative (ring overflow with
  /// compaction disabled, or when a compaction pass could not free room).
  [[nodiscard]] std::uint64_t evicted() const;
  /// Frames merged away into a surviving neighbour by compaction.
  /// evicted() + compacted() + size() == total frames ever sampled.
  [[nodiscard]] std::uint64_t compacted() const;
  [[nodiscard]] const SeriesCompaction& compaction() const {
    return compaction_;
  }
  void clear();

  /// Timeline of one counter across the surviving frames ({} when the
  /// counter appears in none). Counters are monotone, so every delta is
  /// >= 0 as long as nobody reset the registry mid-series.
  [[nodiscard]] std::vector<SeriesPoint> counter_series(
      const std::string& name) const;

  /// Per-second rate of every counter between the two NEWEST surviving
  /// frames, sorted by name. Empty until the series holds two frames (or
  /// when they share a timestamp); counters missing from either frame are
  /// skipped. This is what /metrics exports as `<name>_rate` gauges.
  struct CounterRate {
    std::string name;
    double rate = 0.0;
  };
  [[nodiscard]] std::vector<CounterRate> counter_rates() const;
  /// Same for a gauge (deltas may be negative).
  [[nodiscard]] std::vector<SeriesPoint> gauge_series(
      const std::string& name) const;

  /// CSV timeline: header "t_s,<col>,<col>,..." where the columns are the
  /// sorted union over all surviving frames of every counter name, gauge
  /// name, and histogram-derived `<name>.count` / `.sum` / `.p50` /
  /// `.p99`. Sorting the union keeps the header stable: the column order
  /// never depends on when a metric first appeared. A frame missing a
  /// column leaves the cell empty.
  [[nodiscard]] std::string to_csv() const;
  /// One frame per line, each line the frame's to_json().
  [[nodiscard]] std::string to_jsonl() const;
  void write_csv(const std::string& path) const;
  void write_jsonl(const std::string& path) const;

 private:
  void push_frame(SeriesFrame frame);
  /// Merge old frames per the compaction policy; leaves the ring in sample
  /// order with next_ positioned for appends. Caller holds the lock.
  void compact_locked();
  /// Ring contents in sample order. Caller holds the lock.
  [[nodiscard]] std::vector<SeriesFrame> ordered_locked() const;

  mutable std::mutex mutex_;
  double every_s_;
  std::size_t max_frames_;  ///< 0 = unbounded
  SeriesCompaction compaction_;
  double next_due_s_ = 0.0;
  bool sampled_any_ = false;
  std::vector<SeriesFrame> ring_;
  std::size_t next_ = 0;  ///< ring write cursor (bounded mode, when full)
  std::uint64_t sampled_ = 0;    ///< total frames ever cut
  std::uint64_t compacted_ = 0;  ///< frames merged away by compaction
};

}  // namespace harvest::obs
