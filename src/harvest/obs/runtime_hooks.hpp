// Runtime attachments shared by every simulation front end (harvestctl,
// harvestd, the benches): the optional observability sinks and the telemetry
// cadence a run carries. Grouping them in one struct keeps new sinks from
// growing ad-hoc fields on every config type — a front end fills one
// RuntimeHooks and hands the same value to whatever it runs.
//
// Hooks are pure bookkeeping by contract: attaching any of them (or all)
// never perturbs a simulation's random streams or decisions, so a run
// produces bit-identical results with hooks attached or not. The engines
// test and gate that property.
#pragma once

#include "harvest/obs/span.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::obs {

namespace prof {
class PhaseProfiler;  // obs/prof.hpp; forward-declared to keep the
                      // PROF_PHASE macros out of every hooks consumer
}  // namespace prof

struct RuntimeHooks {
  /// Optional structured event timeline (Chrome-trace/JSONL export).
  EventTracer* tracer = nullptr;
  /// Optional causal span sink with exact wait attribution (obs/span.hpp).
  SpanStore* spans = nullptr;
  /// Optional wall-clock phase profiler (obs/prof.hpp): the engines
  /// activate it for the run's duration; PROF_PHASE scopes throughout the
  /// library accumulate into it. Like every hook, attaching it never
  /// perturbs sim results — it reads host clocks, not random streams.
  prof::PhaseProfiler* profiler = nullptr;
  /// Per-interval telemetry cadence in simulated seconds; 0 disables the
  /// timeline. Negative values are rejected by config validation.
  double snapshot_every_s = 0.0;

  [[nodiscard]] bool any() const {
    return tracer != nullptr || spans != nullptr || profiler != nullptr ||
           snapshot_every_s > 0.0;
  }
};

}  // namespace harvest::obs
