// Runtime attachments shared by every simulation front end (harvestctl,
// harvestd, the benches): the optional observability sinks and the telemetry
// cadence a run carries. Grouping them in one struct keeps new sinks from
// growing ad-hoc fields on every config type — a front end fills one
// RuntimeHooks and hands the same value to whatever it runs.
//
// Hooks are pure bookkeeping by contract: attaching any of them (or all)
// never perturbs a simulation's random streams or decisions, so a run
// produces bit-identical results with hooks attached or not. The engines
// test and gate that property.
#pragma once

#include "harvest/obs/span.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::obs {

struct RuntimeHooks {
  /// Optional structured event timeline (Chrome-trace/JSONL export).
  EventTracer* tracer = nullptr;
  /// Optional causal span sink with exact wait attribution (obs/span.hpp).
  SpanStore* spans = nullptr;
  /// Per-interval telemetry cadence in simulated seconds; 0 disables the
  /// timeline. Negative values are rejected by config validation.
  double snapshot_every_s = 0.0;

  [[nodiscard]] bool any() const {
    return tracer != nullptr || spans != nullptr || snapshot_every_s > 0.0;
  }
};

}  // namespace harvest::obs
