// Minimal blocking HTTP/1.0 exporter — just enough surface for a
// Prometheus scraper and a curl-wielding operator, with no dependencies
// beyond POSIX sockets. One listener thread accepts loopback connections,
// reads a GET request line, dispatches on the path, writes the response,
// and closes; there is no keep-alive, no TLS, no chunking. That is exactly
// the contract the Prometheus text exposition expects from a scrape
// target, and it keeps the attack/bug surface of a research daemon tiny.
//
// ExporterEndpoints wires the conventional endpoint set (/metrics,
// /healthz, /readyz, /snapshot.json) over a MetricsRegistry and a
// SnapshotSeries, so `harvestd` and the socket smoke tests serve the exact
// same handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "harvest/obs/metrics.hpp"
#include "harvest/obs/series.hpp"

namespace harvest::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request target ("/metrics", "/plan?machine=m0001" — the query
/// string, when present, is passed through) to a response. Exceptions
/// become 500s.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Single-threaded blocking HTTP/1.0 server bound to 127.0.0.1. Lifecycle:
/// construct with a handler, bind() (port 0 = ephemeral, read the real one
/// back with port()), start() the listener thread, stop() to shut down
/// (also done by the destructor). Counts requests and errors in the
/// default registry (`obs.http.requests` / `obs.http.errors`).
class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + listen on 127.0.0.1:`port`. Throws std::runtime_error on
  /// failure (port in use, no socket).
  void bind(std::uint16_t port);
  /// Bind + listen on an explicit IPv4 dotted-quad `address` (e.g.
  /// "0.0.0.0" to expose the exporter beyond loopback — the caller owns
  /// that decision and should surface a warning). Throws
  /// std::invalid_argument for an unparseable address, std::runtime_error
  /// on bind/listen failure.
  void bind(const std::string& address, std::uint16_t port);
  /// The actually-bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// The dotted-quad address bind() used ("127.0.0.1" for the default
  /// overload; empty before any successful bind).
  [[nodiscard]] const std::string& address() const { return address_; }

  /// Start the listener thread. bind() must have succeeded.
  void start();
  /// Stop the listener and join the thread. Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return running_.load(); }

 private:
  void serve_loop();
  void handle_connection(int fd);

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string address_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

/// The standard exporter endpoint set over a registry + series:
///   /metrics        Prometheus text exposition of `registry`, plus a
///                   precomputed `<name>_rate` gauge per counter once the
///                   series holds >= 2 frames (rate between the last two)
///   /healthz        200 "ok" while the process lives
///   /readyz         200 once ready() was flipped, 503 before
///   /snapshot.json  latest SnapshotSeries frame (404 until one exists)
/// Anything else is a 404. Use as: HttpServer server(endpoints.handler());
class ExporterEndpoints {
 public:
  ExporterEndpoints(const MetricsRegistry& registry,
                    const SnapshotSeries& series)
      : registry_(registry), series_(series) {}

  void set_ready(bool ready) { ready_.store(ready); }
  [[nodiscard]] bool ready() const { return ready_.load(); }

  [[nodiscard]] HttpResponse respond(const std::string& path) const;
  /// Bindable handler for HttpServer (keeps `this` alive by reference —
  /// the endpoints must outlive the server).
  [[nodiscard]] HttpHandler handler() const {
    return [this](const std::string& path) { return respond(path); };
  }

 private:
  const MetricsRegistry& registry_;
  const SnapshotSeries& series_;
  std::atomic<bool> ready_{false};
};

/// Tiny blocking loopback GET client for smoke tests and CLI checks.
struct HttpGetResult {
  int status = 0;
  std::string content_type;
  std::string body;
};
[[nodiscard]] HttpGetResult http_get(std::uint16_t port,
                                     const std::string& path);

}  // namespace harvest::obs
