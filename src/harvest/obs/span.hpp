// Causal span tracing with EXACT wait attribution across the transfer
// lifecycle. The registry answers "how much", the tracer "when", the
// timeline "how fast" — this layer answers "WHY was this transfer slow",
// which is the question the cooperative-scheduling and prediction-window
// directions need answered before they can claim wins: was the delay
// contention (no capacity), policy (the scheduler chose someone else),
// storm avoidance (deliberate deferral), or client-side backoff?
//
// The model is a tree of spans:
//
//   job (root, one per job per run)
//   ├── backoff            client-side retry delay after a rejection or
//   │                      an interrupted transfer
//   ├── rejected           instant: admission bounced a submission
//   └── transfer           one submitted transfer, submit → finish/removal
//       ├── stagger          [arrival, eligible)   storm-staggerer deferral
//       ├── admission_queue  [eligible, pass)      waiting with no free slot
//       │                    and no scheduling decision made yet
//       ├── scheduler_queue  [pass, start)         waiting after the first
//       │                    LOSING scheduling decision — a slot freed, the
//       │                    policy picked someone else
//       └── service          [start, finish)       on the wire; value is
//                            the dilation over the solo transfer time
//
// The phase chain of a transfer tiles [arrival, end) contiguously, so the
// attributed phase durations sum EXACTLY to the transfer's recorded wait
// (and service = solo + dilation by construction) — the same conservation
// spirit as the timeline's Σ interval_mb == network MB. The store keeps a
// running max of the partition defect so tests and benches can gate on it.
//
// Memory is bounded everywhere: spans land in an overwriting ring (drops
// counted), per-fleet/per-shard/per-class aggregates are fixed-size and
// survive ring eviction, and the slowest-transfer list is a bounded
// min-heap. Recording takes no RNG and makes no decisions, so enabling
// spans never perturbs a simulation — results stay bit-identical with the
// store attached or not.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "harvest/obs/metrics.hpp"

namespace harvest::obs {

enum class SpanPhase : std::uint8_t {
  kJob = 0,
  kTransfer,
  kStagger,
  kAdmissionQueue,
  kSchedulerQueue,
  kService,
  kBackoff,
  kRejected,  ///< instant (zero duration)
};

inline constexpr std::size_t kSpanPhaseCount = 8;

[[nodiscard]] std::string_view to_string(SpanPhase phase);

/// Traffic classes mirrored from server::TransferKind without depending on
/// the server layer (obs sits below it).
inline constexpr std::size_t kSpanKindCount = 3;  ///< checkpoint, recovery,
                                                  ///< proactive

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (job spans only)
  SpanPhase phase = SpanPhase::kTransfer;
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint64_t job_id = 0;
  std::uint64_t transfer_id = 0;  ///< 0 for job/backoff/rejected spans
  std::uint32_t shard = 0;
  std::uint8_t kind = 0;  ///< 0 = checkpoint, 1 = recovery, 2 = proactive
  /// Payload: megabytes moved (transfer), dilation seconds (service),
  /// 0 otherwise.
  double value = 0.0;
  /// Transfer/service: completed (vs interrupted). Job: finished.
  bool ok = true;

  [[nodiscard]] double duration_s() const { return end_s - start_s; }
  /// One JSONL-style record (same fields as a SpanStore::to_jsonl line).
  [[nodiscard]] std::string to_json() const;
};

/// Everything a server knows about one finished (or removed) transfer.
/// Timestamps are ordered arrival <= eligible <= first_pass <= start <=
/// end; attribution clamps at `end_s` for transfers removed mid-phase.
struct TransferTimings {
  std::uint64_t transfer_id = 0;  ///< 0 = the store assigns one
  std::uint64_t job_id = 0;
  std::uint32_t shard = 0;
  std::uint8_t kind = 0;
  double megabytes = 0.0;
  double moved_mb = 0.0;  ///< bytes actually on the wire (== megabytes
                          ///< when completed, pro-rated when interrupted)
  double arrival_s = 0.0;   ///< submission
  double eligible_s = 0.0;  ///< arrival + storm-staggerer deferral
  /// Clock of the first LOSING scheduling decision: a slot was free, this
  /// transfer was eligible, and the policy picked a different one. Unset
  /// when the transfer was never passed over (its whole queue wait was
  /// pure capacity wait).
  std::optional<double> first_pass_s;
  double start_s = 0.0;  ///< service entry (meaningful iff entered_service)
  double end_s = 0.0;    ///< finish, or the removal instant
  /// Time the moved bytes would have taken alone on the pipe
  /// (moved_mb / capacity); dilation = observed service - solo.
  double solo_service_s = 0.0;
  bool entered_service = true;
  bool completed = true;
};

/// The exact per-phase decomposition of one transfer's lifetime.
/// stagger + admission_queue + scheduler_queue == wait_s (to fp rounding)
/// and service_s == solo_s + dilation_s by construction.
struct WaitBreakdown {
  double stagger_s = 0.0;
  double admission_queue_s = 0.0;
  double scheduler_queue_s = 0.0;
  double wait_s = 0.0;     ///< start (or removal) - arrival
  double service_s = 0.0;  ///< 0 unless the transfer entered service
  double solo_s = 0.0;
  double dilation_s = 0.0;  ///< service - solo (can be ~-1e-12 from the
                            ///< server's finish tolerance; not clamped)
};

/// Pure attribution function — property tests hit this directly.
[[nodiscard]] WaitBreakdown attribute(const TransferTimings& t);

/// Aggregated attributed seconds (one row of the attribution report).
struct PhaseTotals {
  std::uint64_t transfers = 0;  ///< finished + interrupted
  std::uint64_t completed = 0;
  std::uint64_t interrupted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backoffs = 0;
  double stagger_s = 0.0;
  double admission_queue_s = 0.0;
  double scheduler_queue_s = 0.0;
  double backoff_s = 0.0;
  double service_solo_s = 0.0;
  double service_dilation_s = 0.0;
  double wait_s = 0.0;
  double moved_mb = 0.0;
};

/// One entry of the top-k slowest list; slowness = wait + positive part of
/// the service dilation (the two components contention can inflate).
struct SlowTransfer {
  std::uint64_t transfer_id = 0;
  std::uint64_t job_id = 0;
  std::uint32_t shard = 0;
  std::uint8_t kind = 0;
  double megabytes = 0.0;
  bool completed = true;
  WaitBreakdown w;

  [[nodiscard]] double slowness_s() const {
    return w.wait_s + (w.dilation_s > 0.0 ? w.dilation_s : 0.0);
  }
};

struct AttributionReport {
  PhaseTotals total;
  std::vector<PhaseTotals> by_shard;  ///< indexed by shard
  std::array<PhaseTotals, kSpanKindCount> by_kind{};
  std::vector<SlowTransfer> slowest;  ///< sorted, slowest first
  /// Running max of |Σ wait phases - wait_s| over every recorded transfer.
  double max_partition_error_s = 0.0;

  [[nodiscard]] std::string to_json() const;
};

struct SpanStoreOptions {
  /// Span ring capacity; oldest spans are overwritten (and counted) when
  /// full. 0 = unbounded. Aggregates and the top-k list are NOT affected
  /// by ring eviction.
  std::size_t capacity = 1 << 16;
  /// Slowest transfers retained for the attribution report.
  std::size_t top_k = 16;
};

/// Thread-safe bounded span store + attribution aggregator. `registry`
/// (nullable) receives the `obs.span.*` metrics group.
class SpanStore {
 public:
  explicit SpanStore(SpanStoreOptions opts = {},
                     MetricsRegistry* registry = nullptr);

  /// Open a job root span (idempotent while open; reopening a CLOSED job —
  /// e.g. the next daemon iteration — starts a fresh root). Transfers for
  /// an unknown job auto-open its root at the transfer's arrival, so
  /// standalone-server producers need not manage job spans at all.
  void open_job(std::uint64_t job_id, double t_s);
  /// Close the job's root span and emit it to the ring. No-op when the job
  /// is unknown or already closed.
  void close_job(std::uint64_t job_id, double t_s, bool finished);

  /// Client-side retry delay (after a rejection or an interrupted
  /// transfer), truncated at eviction when the retry never fired.
  void record_backoff(std::uint64_t job_id, double start_s, double end_s,
                      std::uint8_t kind);
  /// Admission bounced a submission outright (instant span).
  void record_rejected(std::uint64_t job_id, std::uint32_t shard,
                       std::uint8_t kind, double t_s);
  /// One finished or removed transfer: emits the transfer span plus its
  /// non-empty phase children and folds the breakdown into the aggregates,
  /// the top-k list, and the partition-defect maximum.
  void record_transfer(const TransferTimings& t);

  /// Ring contents, oldest surviving first.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] AttributionReport report() const;
  [[nodiscard]] double max_partition_error_s() const;
  void clear();

  /// Structural self-check over the surviving spans: `orphans` = non-root
  /// spans whose parent id is unknown, `inverted` = spans ending before
  /// they start, `overlaps` = phase-chain siblings of one transfer that
  /// overlap in time. All zero for a well-formed store.
  struct TreeCheck {
    std::uint64_t orphans = 0;
    std::uint64_t inverted = 0;
    std::uint64_t overlaps = 0;
    [[nodiscard]] bool ok() const {
      return orphans == 0 && inverted == 0 && overlaps == 0;
    }
  };
  [[nodiscard]] TreeCheck verify() const;

  /// One span per line:
  /// {"id":…,"parent":…,"phase":…,"start_s":…,"end_s":…,"job":…,…}
  /// prefixed by a meta line when the ring overwrote spans.
  [[nodiscard]] std::string to_jsonl() const;
  /// Chrome trace_event view: one "X" event per span on the owning job's
  /// track, so chrome://tracing renders each job's checkpoint history as
  /// one lane of nested phases.
  [[nodiscard]] std::string to_chrome_trace() const;
  void write_jsonl(const std::string& path) const;
  void write_chrome_trace(const std::string& path) const;

 private:
  struct JobSlot {
    std::uint64_t span_id = 0;
    double start_s = 0.0;
    bool open = false;
  };

  JobSlot& ensure_job_locked(std::uint64_t job_id, double t_s);
  void push_locked(Span span);
  void fold_totals_locked(const TransferTimings& t, const WaitBreakdown& w);
  [[nodiscard]] std::vector<Span> spans_locked() const;

  mutable std::mutex mutex_;
  SpanStoreOptions opts_;
  std::vector<Span> ring_;
  std::size_t next_ = 0;        ///< ring write cursor (bounded mode)
  std::uint64_t recorded_ = 0;  ///< spans ever pushed
  std::uint64_t next_id_ = 0;
  std::uint64_t next_transfer_id_ = 0;  ///< auto-ids for transfer_id == 0
  std::unordered_map<std::uint64_t, JobSlot> jobs_;
  PhaseTotals total_;
  std::vector<PhaseTotals> by_shard_;
  std::array<PhaseTotals, kSpanKindCount> by_kind_{};
  std::vector<SlowTransfer> top_;  ///< min-heap by slowness
  double max_partition_error_ = 0.0;

  Counter* m_recorded_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Counter* m_transfers_ = nullptr;
  Counter* m_rejected_ = nullptr;
  Histogram* m_backoff_s_ = nullptr;
  Histogram* m_dilation_s_ = nullptr;
};

}  // namespace harvest::obs
