// Build provenance: which binary produced this artifact? Exposed as
// harvestd /buildinfo.json and embedded in every bench --json header so a
// BENCH_*.json row is attributable to a version + git sha + compiler +
// build type + sanitizer mix. Values are baked in at configure/compile
// time (best-effort: the git sha is read when CMake configures, so an
// incremental rebuild without re-configuring can lag the working tree).
#pragma once

#include <string>

namespace harvest::obs {

struct BuildInfo {
  std::string version;          ///< project version (CMake)
  std::string git_sha;          ///< short sha at configure time, or "unknown"
  std::string compiler;         ///< compiler id + version (__VERSION__)
  std::string build_type;       ///< CMAKE_BUILD_TYPE
  std::string sanitizers;       ///< -fsanitize=... flags, or ""
  std::string cxx_standard;     ///< e.g. "c++20"

  /// {"version": ..., "git_sha": ..., "compiler": ..., "build_type": ...,
  ///  "sanitizers": ..., "cxx_standard": ...}
  [[nodiscard]] std::string to_json() const;
};

/// The binary's baked-in build info.
[[nodiscard]] const BuildInfo& build_info();

/// build_info().to_json() in one call — convenient for JsonWriter::raw.
[[nodiscard]] std::string build_info_json();

}  // namespace harvest::obs
