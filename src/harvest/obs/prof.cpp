#include "harvest/obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "harvest/obs/json.hpp"

namespace harvest::obs::prof {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The phase-name interner. Append-only and never destroyed so ids stay
/// valid from static destructors.
struct Interner {
  std::mutex mutex;
  std::vector<std::string> names;
  std::unordered_map<std::string_view, std::uint16_t> ids;
};

Interner& interner() {
  static auto* i = new Interner();  // intentionally leaked
  return *i;
}

std::atomic<PhaseProfiler*> g_active{nullptr};
/// Bumped on every set_active so thread-local slab caches re-resolve.
std::atomic<std::uint64_t> g_generation{0};

struct TlsCache {
  PhaseProfiler* owner = nullptr;
  std::uint64_t generation = 0;
  void* state = nullptr;
};
thread_local TlsCache tls_cache;

std::uint64_t slot_key(std::uint16_t parent, std::uint16_t phase,
                       std::uint32_t shard) {
  return (static_cast<std::uint64_t>(parent) << 48) |
         (static_cast<std::uint64_t>(phase) << 32) |
         static_cast<std::uint64_t>(shard);
}

}  // namespace

std::uint16_t phase_id(std::string_view name) {
  Interner& in = interner();
  std::lock_guard lock(in.mutex);
  if (const auto it = in.ids.find(name); it != in.ids.end()) {
    return it->second;
  }
  if (in.names.size() >= kNoPhase) {
    throw std::length_error("prof::phase_id: too many distinct phases");
  }
  const auto id = static_cast<std::uint16_t>(in.names.size());
  in.names.emplace_back(name);
  // The key views the interner's own (stable, never-destroyed) string.
  in.ids.emplace(in.names.back(), id);
  return id;
}

std::string_view phase_name(std::uint16_t id) {
  Interner& in = interner();
  std::lock_guard lock(in.mutex);
  if (id >= in.names.size()) return {};
  return in.names[id];
}

PhaseProfiler* active() { return g_active.load(std::memory_order_acquire); }

void set_active(PhaseProfiler* p) {
  // Bump first, publish second: a reader that observes the new pointer is
  // guaranteed to observe a generation at least as new, so its cached slab
  // can never be mistaken for one registered with this profiler.
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  g_active.store(p, std::memory_order_release);
}

ActivationScope::ActivationScope(PhaseProfiler* p) {
  if (p == nullptr) return;
  previous_ = active();
  set_active(p);
  installed_ = true;
}

ActivationScope::~ActivationScope() {
  if (installed_) set_active(previous_);
}

PhaseProfiler::PhaseProfiler(PhaseProfilerOptions options)
    : options_(options), epoch_ns_(now_ns()) {
  if (options_.capture_events) {
    tracer_ = std::make_unique<EventTracer>(options_.event_capacity);
  }
}

PhaseProfiler::~PhaseProfiler() {
  // Losing the active slot on destruction beats dangling; callers normally
  // deactivate first (ActivationScope).
  PhaseProfiler* self = this;
  if (g_active.compare_exchange_strong(self, nullptr,
                                       std::memory_order_acq_rel)) {
    g_generation.fetch_add(1, std::memory_order_acq_rel);
  }
}

PhaseProfiler::ThreadState* PhaseProfiler::thread_state() {
  const auto me = std::this_thread::get_id();
  std::lock_guard lock(threads_mutex_);
  for (const auto& t : threads_) {
    if (t->owner == me) return t.get();
  }
  auto state = std::make_unique<ThreadState>();
  state->owner = me;
  state->index = threads_.size();
  state->first_ns = now_ns();
  state->last_ns = state->first_ns;
  threads_.push_back(std::move(state));
  return threads_.back().get();
}

namespace {

/// Resolve the calling thread's slab for the active profiler, via the
/// thread-local cache (re-resolves on profiler change).
PhaseProfiler::ThreadState* current_state(PhaseProfiler* p) {
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  TlsCache& cache = tls_cache;
  if (cache.owner != p || cache.generation != gen) {
    cache.state = p->thread_state();
    cache.owner = p;
    cache.generation = gen;
  }
  return static_cast<PhaseProfiler::ThreadState*>(cache.state);
}

}  // namespace

ScopedPhase::ScopedPhase(std::uint16_t phase, std::uint32_t shard) {
  PhaseProfiler* p = active();
  if (p == nullptr) return;
  profiler_ = p;
  state_ = current_state(p);
  phase_ = phase;
  shard_ = shard;
  parent_ = state_->top;
  parent_phase_ = parent_ != nullptr ? parent_->phase_ : kNoPhase;
  state_->top = this;
  start_ns_ = now_ns();
}

ScopedPhase::~ScopedPhase() {
  if (profiler_ == nullptr) return;
  const std::uint64_t end_ns = now_ns();
  const double elapsed_s =
      static_cast<double>(end_ns - start_ns_) * 1e-9;
  // Self time excludes nested scopes; the full elapsed time rolls up into
  // the parent's child accumulator so *its* self time excludes us.
  const double self_s = std::max(0.0, elapsed_s - child_s_);
  if (parent_ != nullptr) parent_->child_s_ += elapsed_s;
  state_->top = parent_;
  {
    std::lock_guard lock(state_->mutex);
    const std::uint64_t key = slot_key(parent_phase_, phase_, shard_);
    auto it = state_->slots.find(key);
    if (it == state_->slots.end()) {
      it = state_->slots
               .emplace(key,
                        PhaseProfiler::Slot(
                            profiler_->options_.sketch_relative_error))
               .first;
    }
    it->second.count += 1;
    it->second.self_s += self_s;
    it->second.sketch.add(self_s);
    state_->last_ns = std::max(state_->last_ns, end_ns);
  }
  if (profiler_->tracer_ != nullptr) {
    profiler_->tracer_->record_complete(
        std::string(phase_name(phase_)), "prof",
        static_cast<double>(start_ns_ - profiler_->epoch_ns_) * 1e-9,
        elapsed_s, shard_ == kNoShard ? 0 : shard_, self_s, state_->index);
  }
}

void record(std::uint16_t phase, double seconds, std::uint32_t shard) {
  PhaseProfiler* p = active();
  if (p == nullptr) return;
  if (!(seconds >= 0.0) || !std::isfinite(seconds)) return;
  PhaseProfiler::ThreadState* state = current_state(p);
  const std::uint16_t parent =
      state->top != nullptr ? state->top->phase_ : kNoPhase;
  std::lock_guard lock(state->mutex);
  const std::uint64_t key = slot_key(parent, phase, shard);
  auto it = state->slots.find(key);
  if (it == state->slots.end()) {
    it = state->slots
             .emplace(key, PhaseProfiler::Slot(
                               p->options_.sketch_relative_error))
             .first;
  }
  it->second.count += 1;
  it->second.self_s += seconds;
  it->second.latency = true;
  it->second.sketch.add(seconds);
}

ProfileReport PhaseProfiler::report() const {
  ProfileReport report;
  report.relative_error = options_.sketch_relative_error;
  // Fold per-thread slabs into one canonical table. std::map keys keep the
  // row order deterministic; sketch merges are exact over bucket counts, so
  // the fold is byte-deterministic regardless of thread registration order.
  std::map<std::uint64_t, PhaseStat> folded;
  std::lock_guard threads_lock(threads_mutex_);
  report.threads.reserve(threads_.size());
  for (const auto& t : threads_) {
    ThreadProfile tp;
    tp.thread = t->index;
    std::lock_guard lock(t->mutex);
    tp.wall_s = static_cast<double>(t->last_ns - t->first_ns) * 1e-9;
    for (const auto& [key, slot] : t->slots) {
      auto it = folded.find(key);
      if (it == folded.end()) {
        PhaseStat stat;
        stat.name = std::string(
            phase_name(static_cast<std::uint16_t>((key >> 32) & 0xffff)));
        const auto parent = static_cast<std::uint16_t>(key >> 48);
        stat.parent =
            parent == kNoPhase ? std::string() : std::string(phase_name(parent));
        stat.shard = static_cast<std::uint32_t>(key & 0xffffffffu);
        stat.latency = slot.latency;
        stat.sketch = QuantileSketch(options_.sketch_relative_error);
        it = folded.emplace(key, std::move(stat)).first;
      }
      it->second.count += slot.count;
      it->second.self_s += slot.self_s;
      it->second.latency = it->second.latency || slot.latency;
      it->second.sketch.merge(slot.sketch);
      if (!slot.latency) tp.self_total_s += slot.self_s;
    }
    // Clock-rounding slack: each scope contributes two clock reads worth of
    // double-rounding; 1 µs + 1e-9 of wall absorbs it.
    const double slack = 1e-6 + 1e-9 * tp.wall_s;
    const double excess = tp.self_total_s - tp.wall_s;
    if (excess > slack) {
      report.conservation_ok = false;
    }
    report.max_thread_excess_s =
        std::max(report.max_thread_excess_s, excess);
    report.threads.push_back(tp);
  }
  report.phases.reserve(folded.size());
  for (auto& [key, stat] : folded) {
    (void)key;
    report.phases.push_back(std::move(stat));
  }
  return report;
}

void PhaseProfiler::write_chrome_trace(const std::string& path) const {
  if (tracer_ == nullptr) {
    throw std::runtime_error(
        "PhaseProfiler::write_chrome_trace: event capture disabled "
        "(PhaseProfilerOptions::capture_events)");
  }
  tracer_->write_chrome_trace(path);
}

void PhaseProfiler::clear() {
  std::lock_guard lock(threads_mutex_);
  for (const auto& t : threads_) {
    std::lock_guard state_lock(t->mutex);
    t->slots.clear();
    t->first_ns = now_ns();
    t->last_ns = t->first_ns;
  }
  if (tracer_ != nullptr) tracer_->clear();
}

double ProfileReport::self_seconds(std::string_view name) const {
  double total = 0.0;
  for (const auto& stat : phases) {
    if (stat.name == name) total += stat.self_s;
  }
  return total;
}

std::uint64_t ProfileReport::scope_count(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& stat : phases) {
    if (stat.name == name) total += stat.count;
  }
  return total;
}

namespace {

/// Aggregate of all shard rows for one (parent, name) tree node.
struct TreeNode {
  std::string name;
  std::string parent;
  bool latency = false;
  std::uint64_t count = 0;
  double self_s = 0.0;
  QuantileSketch sketch;
  std::vector<const PhaseStat*> shard_rows;  ///< rows with shard != kNoShard

  explicit TreeNode(double relative_error) : sketch(relative_error) {}
};

void write_node(JsonWriter& w, const TreeNode& node,
                const std::vector<TreeNode>& nodes, int depth);

void write_children(JsonWriter& w, const std::string& parent,
                    const std::vector<TreeNode>& nodes, int depth) {
  w.begin_array();
  for (const auto& node : nodes) {
    if (node.parent == parent && node.name != parent) {
      write_node(w, node, nodes, depth);
    }
  }
  w.end_array();
}

void write_node(JsonWriter& w, const TreeNode& node,
                const std::vector<TreeNode>& nodes, int depth) {
  w.begin_object();
  w.field("name", node.name);
  w.field("kind", node.latency ? "latency" : "self");
  w.field("count", node.count);
  w.field("self_s", node.self_s);
  w.field("mean_s", node.sketch.mean());
  w.field("p50_s", node.sketch.quantile(0.50));
  w.field("p90_s", node.sketch.quantile(0.90));
  w.field("p99_s", node.sketch.quantile(0.99));
  w.field("max_s", node.sketch.max());
  if (!node.shard_rows.empty()) {
    // Busiest shards first, capped so a million-shard run stays readable.
    constexpr std::size_t kMaxShards = 32;
    auto rows = node.shard_rows;
    std::sort(rows.begin(), rows.end(),
              [](const PhaseStat* a, const PhaseStat* b) {
                if (a->self_s != b->self_s) return a->self_s > b->self_s;
                return a->shard < b->shard;
              });
    w.field("shards_total", static_cast<std::uint64_t>(rows.size()));
    if (rows.size() > kMaxShards) rows.resize(kMaxShards);
    w.key("shards").begin_array();
    for (const PhaseStat* row : rows) {
      w.begin_object();
      w.field("shard", static_cast<std::uint64_t>(row->shard));
      w.field("count", row->count);
      w.field("self_s", row->self_s);
      w.field("p99_s", row->sketch.quantile(0.99));
      w.end_object();
    }
    w.end_array();
  }
  w.key("children");
  if (depth >= 8) {
    w.begin_array().end_array();  // recursion fuse (self-nested phases)
  } else {
    write_children(w, node.name, nodes, depth + 1);
  }
  w.end_object();
}

}  // namespace

std::string ProfileReport::to_json() const {
  // Collapse shard rows into (parent, name) nodes for the tree.
  std::vector<TreeNode> nodes;
  for (const auto& stat : phases) {
    TreeNode* node = nullptr;
    for (auto& n : nodes) {
      if (n.name == stat.name && n.parent == stat.parent) {
        node = &n;
        break;
      }
    }
    if (node == nullptr) {
      nodes.emplace_back(relative_error);
      node = &nodes.back();
      node->name = stat.name;
      node->parent = stat.parent;
    }
    node->latency = node->latency || stat.latency;
    node->count += stat.count;
    node->self_s += stat.self_s;
    node->sketch.merge(stat.sketch);
    if (stat.shard != kNoShard) node->shard_rows.push_back(&stat);
  }
  JsonWriter w;
  w.begin_object();
  w.field("relative_error", relative_error);
  w.field("conservation_ok", conservation_ok);
  w.field("max_thread_excess_s", max_thread_excess_s);
  w.key("threads").begin_array();
  for (const auto& t : threads) {
    w.begin_object();
    w.field("thread", static_cast<std::uint64_t>(t.thread));
    w.field("wall_s", t.wall_s);
    w.field("self_total_s", t.self_total_s);
    w.end_object();
  }
  w.end_array();
  // Top level: nodes whose parent never appears as a node name (covers both
  // true roots and nodes whose parent phase was never profiled here).
  w.key("phases").begin_array();
  for (const auto& node : nodes) {
    bool parent_present = false;
    if (!node.parent.empty()) {
      for (const auto& other : nodes) {
        if (other.name == node.parent && &other != &node) {
          parent_present = true;
          break;
        }
      }
    }
    if (!parent_present) write_node(w, node, nodes, 0);
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace harvest::obs::prof
