#include "harvest/obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "harvest/obs/json.hpp"

namespace harvest::obs {
namespace {

constexpr std::string_view kPhaseNames[kSpanPhaseCount] = {
    "job",           "transfer",        "stagger", "admission_queue",
    "scheduler_queue", "service",       "backoff", "rejected"};

constexpr std::string_view kKindNames[kSpanKindCount] = {
    "checkpoint", "recovery", "proactive"};

/// Phase-chain siblings are allowed to touch but not to overlap; a sub-ns
/// slop absorbs fp rounding in the producers' clocks.
constexpr double kOverlapTolerance = 1e-9;

void append_span_json(JsonWriter& w, const Span& s, bool chrome) {
  const double scale = chrome ? 1e6 : 1.0;
  w.begin_object();
  if (chrome) {
    w.field("name", to_string(s.phase));
    w.field("cat", "span");
    w.field("ph", "X");
    w.field("ts", s.start_s * scale);
    w.field("dur", s.duration_s() * scale);
    w.field("pid", 1);
    // One lane per job: the whole checkpoint history of a job reads as a
    // single track of nested transfer/phase blocks.
    w.field("tid", s.job_id);
    w.key("args").begin_object();
    w.field("id", s.id);
    w.field("parent", s.parent);
    w.field("transfer", s.transfer_id);
    w.field("shard", static_cast<std::uint64_t>(s.shard));
    w.field("kind", kKindNames[s.kind < kSpanKindCount ? s.kind : 0]);
    w.field("value", s.value);
    w.field("ok", s.ok);
    w.end_object();
  } else {
    w.field("id", s.id);
    w.field("parent", s.parent);
    w.field("phase", to_string(s.phase));
    w.field("start_s", s.start_s);
    w.field("end_s", s.end_s);
    w.field("dur_s", s.duration_s());
    w.field("job", s.job_id);
    w.field("transfer", s.transfer_id);
    w.field("shard", static_cast<std::uint64_t>(s.shard));
    w.field("kind", kKindNames[s.kind < kSpanKindCount ? s.kind : 0]);
    w.field("value", s.value);
    w.field("ok", s.ok);
  }
  w.end_object();
}

void append_totals_json(JsonWriter& w, const PhaseTotals& t) {
  w.begin_object();
  w.field("transfers", t.transfers);
  w.field("completed", t.completed);
  w.field("interrupted", t.interrupted);
  w.field("rejected", t.rejected);
  w.field("backoffs", t.backoffs);
  w.field("stagger_s", t.stagger_s);
  w.field("admission_queue_s", t.admission_queue_s);
  w.field("scheduler_queue_s", t.scheduler_queue_s);
  w.field("backoff_s", t.backoff_s);
  w.field("service_solo_s", t.service_solo_s);
  w.field("service_dilation_s", t.service_dilation_s);
  w.field("wait_s", t.wait_s);
  w.field("moved_mb", t.moved_mb);
  w.end_object();
}

void fold(PhaseTotals& agg, const TransferTimings& t, const WaitBreakdown& w) {
  ++agg.transfers;
  if (t.completed) {
    ++agg.completed;
  } else {
    ++agg.interrupted;
  }
  agg.stagger_s += w.stagger_s;
  agg.admission_queue_s += w.admission_queue_s;
  agg.scheduler_queue_s += w.scheduler_queue_s;
  agg.service_solo_s += w.solo_s;
  agg.service_dilation_s += w.dilation_s;
  agg.wait_s += w.wait_s;
  agg.moved_mb += t.moved_mb;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SpanStore: cannot open " + path);
  out << text;
  if (!out) throw std::runtime_error("SpanStore: write failed: " + path);
}

}  // namespace

std::string_view to_string(SpanPhase phase) {
  const auto i = static_cast<std::size_t>(phase);
  return i < kSpanPhaseCount ? kPhaseNames[i] : "unknown";
}

std::string Span::to_json() const {
  JsonWriter w;
  append_span_json(w, *this, /*chrome=*/false);
  return w.str();
}

WaitBreakdown attribute(const TransferTimings& t) {
  WaitBreakdown w;
  // Phase boundaries clamp at the end of the observation: a transfer
  // removed while still staggered or queued truncates its chain there.
  const double eligible = std::min(t.eligible_s, t.end_s);
  w.stagger_s = eligible - t.arrival_s;
  if (t.entered_service) {
    const double pass =
        t.first_pass_s ? std::min(*t.first_pass_s, t.start_s) : t.start_s;
    w.admission_queue_s = pass - eligible;
    w.scheduler_queue_s = t.start_s - pass;
    w.wait_s = t.start_s - t.arrival_s;
    w.service_s = t.end_s - t.start_s;
    w.solo_s = t.solo_service_s;
    w.dilation_s = w.service_s - w.solo_s;
  } else {
    const double pass =
        t.first_pass_s ? std::min(*t.first_pass_s, t.end_s) : t.end_s;
    w.admission_queue_s = pass - eligible;
    w.scheduler_queue_s = t.end_s - pass;
    w.wait_s = t.end_s - t.arrival_s;
  }
  return w;
}

std::string AttributionReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("max_partition_error_s", max_partition_error_s);
  w.key("total");
  append_totals_json(w, total);
  w.key("by_shard").begin_array();
  for (const auto& t : by_shard) append_totals_json(w, t);
  w.end_array();
  w.key("by_kind").begin_object();
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    w.key(kKindNames[k]);
    append_totals_json(w, by_kind[k]);
  }
  w.end_object();
  w.key("slowest").begin_array();
  for (const auto& s : slowest) {
    w.begin_object();
    w.field("transfer_id", s.transfer_id);
    w.field("job_id", s.job_id);
    w.field("shard", static_cast<std::uint64_t>(s.shard));
    w.field("kind", kKindNames[s.kind < kSpanKindCount ? s.kind : 0]);
    w.field("megabytes", s.megabytes);
    w.field("completed", s.completed);
    w.field("slowness_s", s.slowness_s());
    w.field("wait_s", s.w.wait_s);
    w.field("stagger_s", s.w.stagger_s);
    w.field("admission_queue_s", s.w.admission_queue_s);
    w.field("scheduler_queue_s", s.w.scheduler_queue_s);
    w.field("service_s", s.w.service_s);
    w.field("solo_s", s.w.solo_s);
    w.field("dilation_s", s.w.dilation_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

SpanStore::SpanStore(SpanStoreOptions opts, MetricsRegistry* registry)
    : opts_(opts) {
  if (opts_.capacity > 0) {
    ring_.reserve(std::min<std::size_t>(opts_.capacity, 1024));
  }
  if (registry != nullptr) {
    registry->describe("obs.span.recorded",
                       "Spans pushed into the store (all phases).");
    registry->describe("obs.span.dropped",
                       "Spans overwritten by the bounded ring.");
    registry->describe("obs.span.transfers",
                       "Transfer lifecycles attributed (finished + removed).");
    registry->describe("obs.span.rejected",
                       "Submissions bounced by admission control.");
    registry->describe("obs.span.backoff_s",
                       "Client-side backoff span durations (s).");
    registry->describe("obs.span.dilation_s",
                       "Service dilation over solo transfer time (s).");
    m_recorded_ = &registry->counter("obs.span.recorded");
    m_dropped_ = &registry->counter("obs.span.dropped");
    m_transfers_ = &registry->counter("obs.span.transfers");
    m_rejected_ = &registry->counter("obs.span.rejected");
    m_backoff_s_ = &registry->histogram("obs.span.backoff_s");
    m_dilation_s_ = &registry->histogram("obs.span.dilation_s");
  }
}

SpanStore::JobSlot& SpanStore::ensure_job_locked(std::uint64_t job_id,
                                                 double t_s) {
  auto [it, inserted] = jobs_.try_emplace(job_id);
  JobSlot& slot = it->second;
  if (inserted || !slot.open) {
    // Fresh root — a reopened job (next daemon iteration) gets a new span
    // id so children never attach to a closed parent.
    slot.span_id = ++next_id_;
    slot.start_s = t_s;
    slot.open = true;
  }
  return slot;
}

void SpanStore::push_locked(Span span) {
  if (opts_.capacity == 0 || ring_.size() < opts_.capacity) {
    ring_.push_back(span);
    if (opts_.capacity > 0) next_ = ring_.size() % opts_.capacity;
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % opts_.capacity;
    if (m_dropped_ != nullptr) m_dropped_->add();
  }
  ++recorded_;
  if (m_recorded_ != nullptr) m_recorded_->add();
}

void SpanStore::open_job(std::uint64_t job_id, double t_s) {
  std::lock_guard lock(mutex_);
  ensure_job_locked(job_id, t_s);
}

void SpanStore::close_job(std::uint64_t job_id, double t_s, bool finished) {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || !it->second.open) return;
  Span s;
  s.id = it->second.span_id;
  s.parent = 0;
  s.phase = SpanPhase::kJob;
  s.start_s = it->second.start_s;
  s.end_s = t_s;
  s.job_id = job_id;
  s.ok = finished;
  it->second.open = false;
  push_locked(s);
}

void SpanStore::record_backoff(std::uint64_t job_id, double start_s,
                               double end_s, std::uint8_t kind) {
  std::lock_guard lock(mutex_);
  const JobSlot& job = ensure_job_locked(job_id, start_s);
  Span s;
  s.id = ++next_id_;
  s.parent = job.span_id;
  s.phase = SpanPhase::kBackoff;
  s.start_s = start_s;
  s.end_s = end_s;
  s.job_id = job_id;
  s.kind = kind;
  push_locked(s);
  ++total_.backoffs;
  total_.backoff_s += end_s - start_s;
  if (kind < kSpanKindCount) {
    ++by_kind_[kind].backoffs;
    by_kind_[kind].backoff_s += end_s - start_s;
  }
  if (m_backoff_s_ != nullptr) m_backoff_s_->observe(end_s - start_s);
}

void SpanStore::record_rejected(std::uint64_t job_id, std::uint32_t shard,
                                std::uint8_t kind, double t_s) {
  std::lock_guard lock(mutex_);
  const JobSlot& job = ensure_job_locked(job_id, t_s);
  Span s;
  s.id = ++next_id_;
  s.parent = job.span_id;
  s.phase = SpanPhase::kRejected;
  s.start_s = t_s;
  s.end_s = t_s;
  s.job_id = job_id;
  s.shard = shard;
  s.kind = kind;
  push_locked(s);
  ++total_.rejected;
  if (shard >= by_shard_.size()) by_shard_.resize(shard + 1);
  ++by_shard_[shard].rejected;
  if (kind < kSpanKindCount) ++by_kind_[kind].rejected;
  if (m_rejected_ != nullptr) m_rejected_->add();
}

void SpanStore::record_transfer(const TransferTimings& t) {
  const WaitBreakdown w = attribute(t);
  std::lock_guard lock(mutex_);
  const std::uint64_t transfer_id =
      t.transfer_id != 0 ? t.transfer_id : ++next_transfer_id_;
  const JobSlot& job = ensure_job_locked(t.job_id, t.arrival_s);

  Span transfer;
  transfer.id = ++next_id_;
  transfer.parent = job.span_id;
  transfer.phase = SpanPhase::kTransfer;
  transfer.start_s = t.arrival_s;
  transfer.end_s = t.end_s;
  transfer.job_id = t.job_id;
  transfer.transfer_id = transfer_id;
  transfer.shard = t.shard;
  transfer.kind = t.kind;
  transfer.value = t.moved_mb;
  transfer.ok = t.completed;
  push_locked(transfer);

  // Phase children tile [arrival, end); zero-duration phases are elided so
  // traces stay readable, but their (zero) contribution is still folded
  // into the aggregates, keeping the partition identity exact.
  double cursor = t.arrival_s;
  const auto child = [&](SpanPhase phase, double duration, double value,
                         bool ok) {
    if (duration <= 0.0) return;
    Span s;
    s.id = ++next_id_;
    s.parent = transfer.id;
    s.phase = phase;
    s.start_s = cursor;
    s.end_s = cursor + duration;
    s.job_id = t.job_id;
    s.transfer_id = transfer_id;
    s.shard = t.shard;
    s.kind = t.kind;
    s.value = value;
    s.ok = ok;
    push_locked(s);
    cursor = s.end_s;
  };
  child(SpanPhase::kStagger, w.stagger_s, 0.0, true);
  child(SpanPhase::kAdmissionQueue, w.admission_queue_s, 0.0, true);
  child(SpanPhase::kSchedulerQueue, w.scheduler_queue_s, 0.0, true);
  if (t.entered_service) {
    child(SpanPhase::kService, w.service_s, w.dilation_s, t.completed);
  }

  fold_totals_locked(t, w);
  if (m_transfers_ != nullptr) m_transfers_->add();
  if (m_dilation_s_ != nullptr && t.entered_service) {
    m_dilation_s_->observe(w.dilation_s);
  }
}

void SpanStore::fold_totals_locked(const TransferTimings& t,
                                   const WaitBreakdown& w) {
  fold(total_, t, w);
  if (t.shard >= by_shard_.size()) by_shard_.resize(t.shard + 1);
  fold(by_shard_[t.shard], t, w);
  if (t.kind < kSpanKindCount) fold(by_kind_[t.kind], t, w);

  const double defect = std::fabs(
      (w.stagger_s + w.admission_queue_s + w.scheduler_queue_s) - w.wait_s);
  max_partition_error_ = std::max(max_partition_error_, defect);

  SlowTransfer slow;
  slow.transfer_id = t.transfer_id;
  slow.job_id = t.job_id;
  slow.shard = t.shard;
  slow.kind = t.kind;
  slow.megabytes = t.megabytes;
  slow.completed = t.completed;
  slow.w = w;
  const auto faster = [](const SlowTransfer& a, const SlowTransfer& b) {
    return a.slowness_s() > b.slowness_s();
  };
  if (opts_.top_k == 0) return;
  if (top_.size() < opts_.top_k) {
    top_.push_back(slow);
    std::push_heap(top_.begin(), top_.end(), faster);
  } else if (slow.slowness_s() > top_.front().slowness_s()) {
    std::pop_heap(top_.begin(), top_.end(), faster);
    top_.back() = slow;
    std::push_heap(top_.begin(), top_.end(), faster);
  }
}

std::vector<Span> SpanStore::spans_locked() const {
  if (opts_.capacity == 0 || ring_.size() < opts_.capacity) return ring_;
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Span> SpanStore::spans() const {
  std::lock_guard lock(mutex_);
  return spans_locked();
}

std::size_t SpanStore::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t SpanStore::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::uint64_t SpanStore::dropped() const {
  std::lock_guard lock(mutex_);
  return recorded_ - ring_.size();
}

AttributionReport SpanStore::report() const {
  std::lock_guard lock(mutex_);
  AttributionReport r;
  r.total = total_;
  r.by_shard = by_shard_;
  r.by_kind = by_kind_;
  r.slowest = top_;
  r.max_partition_error_s = max_partition_error_;
  std::sort(r.slowest.begin(), r.slowest.end(),
            [](const SlowTransfer& a, const SlowTransfer& b) {
              if (a.slowness_s() != b.slowness_s()) {
                return a.slowness_s() > b.slowness_s();
              }
              return a.transfer_id < b.transfer_id;
            });
  return r;
}

double SpanStore::max_partition_error_s() const {
  std::lock_guard lock(mutex_);
  return max_partition_error_;
}

void SpanStore::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  next_id_ = 0;
  next_transfer_id_ = 0;
  jobs_.clear();
  total_ = PhaseTotals{};
  by_shard_.clear();
  by_kind_ = {};
  top_.clear();
  max_partition_error_ = 0.0;
}

SpanStore::TreeCheck SpanStore::verify() const {
  std::lock_guard lock(mutex_);
  const std::vector<Span> all = spans_locked();
  TreeCheck check;

  std::unordered_map<std::uint64_t, bool> known;
  known.reserve(all.size() + jobs_.size());
  for (const auto& s : all) known.emplace(s.id, true);
  for (const auto& [job_id, slot] : jobs_) known.emplace(slot.span_id, true);

  // Group the wait/service phase chain by its parent transfer span and
  // check the siblings tile without overlap.
  std::unordered_map<std::uint64_t, std::vector<const Span*>> chains;
  for (const auto& s : all) {
    if (s.end_s < s.start_s - kOverlapTolerance) ++check.inverted;
    if (s.parent != 0 && known.find(s.parent) == known.end()) ++check.orphans;
    switch (s.phase) {
      case SpanPhase::kStagger:
      case SpanPhase::kAdmissionQueue:
      case SpanPhase::kSchedulerQueue:
      case SpanPhase::kService:
        chains[s.parent].push_back(&s);
        break;
      default:
        break;
    }
  }
  for (auto& [parent, chain] : chains) {
    std::sort(chain.begin(), chain.end(), [](const Span* a, const Span* b) {
      return a->start_s < b->start_s;
    });
    for (std::size_t i = 1; i < chain.size(); ++i) {
      if (chain[i]->start_s < chain[i - 1]->end_s - kOverlapTolerance) {
        ++check.overlaps;
      }
    }
  }
  return check;
}

std::string SpanStore::to_jsonl() const {
  std::string out;
  if (const std::uint64_t lost = dropped(); lost > 0) {
    JsonWriter w;
    w.begin_object();
    w.field("meta", "spans");
    w.field("dropped", lost);
    w.field("capacity", static_cast<std::uint64_t>(opts_.capacity));
    w.end_object();
    out += w.str();
    out += '\n';
  }
  for (const auto& s : spans()) {
    JsonWriter w;
    append_span_json(w, s, /*chrome=*/false);
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string SpanStore::to_chrome_trace() const {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.field("droppedSpans", dropped());
  w.field("ringCapacity", static_cast<std::uint64_t>(opts_.capacity));
  w.end_object();
  w.key("traceEvents").begin_array();
  for (const auto& s : spans()) append_span_json(w, s, /*chrome=*/true);
  w.end_array();
  w.end_object();
  return w.str();
}

void SpanStore::write_jsonl(const std::string& path) const {
  write_text_file(path, to_jsonl());
}

void SpanStore::write_chrome_trace(const std::string& path) const {
  write_text_file(path, to_chrome_trace());
}

}  // namespace harvest::obs
