#include "harvest/obs/series.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "harvest/obs/json.hpp"

namespace harvest::obs {

std::string SeriesFrame::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("t_s", t_s);
  w.key("metrics").raw(snapshot.to_json());
  w.end_object();
  return w.str();
}

SnapshotSeries::SnapshotSeries(double every_s, std::size_t max_frames,
                               SeriesCompaction compaction)
    : every_s_(every_s), max_frames_(max_frames), compaction_(compaction) {
  if (!(every_s > 0.0)) {
    throw std::invalid_argument("SnapshotSeries: every_s must be > 0");
  }
  if (compaction_.enabled()) {
    if (max_frames_ == 0 || compaction_.keep_recent >= max_frames_) {
      throw std::invalid_argument(
          "SnapshotSeries: compaction.keep_recent must be < max_frames");
    }
    if (compaction_.stride < 2) {
      throw std::invalid_argument(
          "SnapshotSeries: compaction.stride must be >= 2");
    }
  }
  if (max_frames_ > 0) {
    ring_.reserve(std::min<std::size_t>(max_frames_, 64));
  }
}

std::vector<SeriesFrame> SnapshotSeries::ordered_locked() const {
  if (max_frames_ == 0 || ring_.size() < max_frames_) return ring_;
  std::vector<SeriesFrame> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void SnapshotSeries::compact_locked() {
  std::vector<SeriesFrame> ordered = ordered_locked();
  const std::size_t old_n = ordered.size() > compaction_.keep_recent
                                ? ordered.size() - compaction_.keep_recent
                                : 0;
  if (old_n < compaction_.stride) return;  // nothing mergeable; caller evicts
  std::vector<SeriesFrame> out;
  out.reserve(ordered.size());
  std::size_t i = 0;
  while (i < old_n) {
    // Keep the LAST frame of each group: snapshots are cumulative, so the
    // survivor carries the merged frames' state and deltas across surviving
    // boundaries stay exact.
    const std::size_t run = std::min(compaction_.stride, old_n - i);
    out.push_back(std::move(ordered[i + run - 1]));
    compacted_ += run - 1;
    i += run;
  }
  for (; i < ordered.size(); ++i) out.push_back(std::move(ordered[i]));
  ring_ = std::move(out);
  next_ = ring_.size() % max_frames_;
}

void SnapshotSeries::push_frame(SeriesFrame frame) {
  if (compaction_.enabled() && max_frames_ > 0 &&
      ring_.size() >= max_frames_) {
    compact_locked();
  }
  if (max_frames_ == 0 || ring_.size() < max_frames_) {
    ring_.push_back(std::move(frame));
    if (max_frames_ > 0) next_ = ring_.size() % max_frames_;
  } else {
    ring_[next_] = std::move(frame);
    next_ = (next_ + 1) % max_frames_;
  }
  ++sampled_;
}

void SnapshotSeries::sample(double t_s, const MetricsRegistry& registry) {
  sample(t_s, registry.snapshot());
}

void SnapshotSeries::sample(double t_s, RegistrySnapshot snapshot) {
  std::lock_guard lock(mutex_);
  push_frame(SeriesFrame{t_s, std::move(snapshot)});
}

bool SnapshotSeries::maybe_sample(double t_s,
                                  const MetricsRegistry& registry) {
  {
    std::lock_guard lock(mutex_);
    if (sampled_any_ && t_s < next_due_s_) return false;
    sampled_any_ = true;
    // Advance past t_s in whole cadence steps so a producer that slept
    // through several periods does not cut a frame backlog.
    const double base = next_due_s_ > t_s ? next_due_s_ : t_s;
    next_due_s_ =
        every_s_ * (std::floor(base / every_s_) + 1.0);
  }
  sample(t_s, registry.snapshot());
  return true;
}

std::vector<SeriesFrame> SnapshotSeries::frames() const {
  std::lock_guard lock(mutex_);
  return ordered_locked();
}

std::optional<SeriesFrame> SnapshotSeries::latest() const {
  std::lock_guard lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  if (max_frames_ == 0 || ring_.size() < max_frames_) return ring_.back();
  return ring_[(next_ + ring_.size() - 1) % ring_.size()];
}

std::size_t SnapshotSeries::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t SnapshotSeries::evicted() const {
  std::lock_guard lock(mutex_);
  return sampled_ - ring_.size() - compacted_;
}

std::uint64_t SnapshotSeries::compacted() const {
  std::lock_guard lock(mutex_);
  return compacted_;
}

void SnapshotSeries::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  sampled_ = 0;
  compacted_ = 0;
  sampled_any_ = false;
  next_due_s_ = 0.0;
}

namespace {

/// Extract one named metric across frames with `lookup` returning the
/// value when the frame carries it.
template <typename Lookup>
std::vector<SeriesPoint> extract_series(const std::vector<SeriesFrame>& fs,
                                        const Lookup& lookup) {
  std::vector<SeriesPoint> out;
  bool have_prev = false;
  double prev_v = 0.0;
  double prev_t = 0.0;
  for (const auto& f : fs) {
    double v = 0.0;
    if (!lookup(f, v)) continue;
    SeriesPoint p;
    p.t_s = f.t_s;
    p.value = v;
    if (have_prev) {
      p.delta = v - prev_v;
      const double dt = f.t_s - prev_t;
      p.rate = dt > 0.0 ? p.delta / dt : 0.0;
    }
    out.push_back(p);
    have_prev = true;
    prev_v = v;
    prev_t = f.t_s;
  }
  return out;
}

}  // namespace

std::vector<SeriesPoint> SnapshotSeries::counter_series(
    const std::string& name) const {
  return extract_series(
      frames(), [&](const SeriesFrame& f, double& v) {
        for (const auto& c : f.snapshot.counters) {
          if (c.name == name) {
            v = static_cast<double>(c.value);
            return true;
          }
        }
        return false;
      });
}

std::vector<SnapshotSeries::CounterRate> SnapshotSeries::counter_rates()
    const {
  SeriesFrame prev;
  SeriesFrame last;
  {
    std::lock_guard lock(mutex_);
    if (ring_.size() < 2) return {};
    if (max_frames_ == 0 || ring_.size() < max_frames_) {
      prev = ring_[ring_.size() - 2];
      last = ring_.back();
    } else {
      const std::size_t n = ring_.size();
      prev = ring_[(next_ + n - 2) % n];
      last = ring_[(next_ + n - 1) % n];
    }
  }
  const double dt = last.t_s - prev.t_s;
  if (!(dt > 0.0)) return {};
  std::vector<CounterRate> out;
  out.reserve(last.snapshot.counters.size());
  // Both counter lists are sorted by name; merge-walk them.
  auto p = prev.snapshot.counters.begin();
  for (const auto& c : last.snapshot.counters) {
    while (p != prev.snapshot.counters.end() && p->name < c.name) ++p;
    if (p == prev.snapshot.counters.end()) break;
    if (p->name != c.name) continue;
    const double delta =
        static_cast<double>(c.value) - static_cast<double>(p->value);
    out.push_back({c.name, delta / dt});
  }
  return out;
}

std::vector<SeriesPoint> SnapshotSeries::gauge_series(
    const std::string& name) const {
  return extract_series(frames(), [&](const SeriesFrame& f, double& v) {
    for (const auto& g : f.snapshot.gauges) {
      if (g.name == name) {
        v = g.value;
        return true;
      }
    }
    return false;
  });
}

std::string SnapshotSeries::to_csv() const {
  const auto fs = frames();
  // Sorted union of columns over every frame: the header never depends on
  // when a metric first appeared (std::set keeps it ordered + unique).
  std::set<std::string> columns;
  for (const auto& f : fs) {
    for (const auto& c : f.snapshot.counters) columns.insert(c.name);
    for (const auto& g : f.snapshot.gauges) columns.insert(g.name);
    for (const auto& h : f.snapshot.histograms) {
      columns.insert(h.name + ".count");
      columns.insert(h.name + ".sum");
      columns.insert(h.name + ".p50");
      columns.insert(h.name + ".p99");
    }
  }
  std::string out = "t_s";
  for (const auto& c : columns) {
    out += ',';
    out += c;
  }
  out += '\n';
  for (const auto& f : fs) {
    // Per-frame lookup maps (the snapshot vectors are name-sorted, but a
    // map keeps this O(log n) without assuming that).
    std::map<std::string, double> values;
    for (const auto& c : f.snapshot.counters) {
      values[c.name] = static_cast<double>(c.value);
    }
    for (const auto& g : f.snapshot.gauges) values[g.name] = g.value;
    for (const auto& h : f.snapshot.histograms) {
      values[h.name + ".count"] = static_cast<double>(h.count);
      values[h.name + ".sum"] = h.sum;
      values[h.name + ".p50"] = h.p50;
      values[h.name + ".p99"] = h.p99;
    }
    out += json_number(f.t_s);
    for (const auto& c : columns) {
      out += ',';
      const auto it = values.find(c);
      if (it != values.end()) out += json_number(it->second);
    }
    out += '\n';
  }
  return out;
}

std::string SnapshotSeries::to_jsonl() const {
  std::string out;
  for (const auto& f : frames()) {
    out += f.to_json();
    out += '\n';
  }
  return out;
}

namespace {
void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("SnapshotSeries: cannot open " + path);
  }
  out << text;
  if (!out) {
    throw std::runtime_error("SnapshotSeries: write failed: " + path);
  }
}
}  // namespace

void SnapshotSeries::write_csv(const std::string& path) const {
  write_text_file(path, to_csv());
}

void SnapshotSeries::write_jsonl(const std::string& path) const {
  write_text_file(path, to_jsonl());
}

}  // namespace harvest::obs
