#include "harvest/obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace harvest::obs {
namespace {

struct HttpMetrics {
  Counter& requests;
  Counter& errors;
};

HttpMetrics& http_metrics() {
  auto& reg = default_registry();
  static HttpMetrics m{
      reg.counter("obs.http.requests"),
      reg.counter("obs.http.errors"),
  };
  return m;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Write all of `data` to `fd`, swallowing EINTR. Returns false on error.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string render_response(const HttpResponse& r) {
  std::string out = "HTTP/1.0 " + std::to_string(r.status) + ' ' +
                    reason_phrase(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

HttpServer::HttpServer(HttpHandler handler)
    : handler_(std::move(handler)) {
  if (!handler_) {
    throw std::invalid_argument("HttpServer: need a handler");
  }
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::bind(std::uint16_t port) {
  bind("127.0.0.1", port);
}

void HttpServer::bind(const std::string& address, std::uint16_t port) {
  if (listen_fd_ >= 0) {
    throw std::runtime_error("HttpServer: already bound");
  }
  in_addr parsed{};
  if (::inet_pton(AF_INET, address.c_str(), &parsed) != 1) {
    throw std::invalid_argument(
        "HttpServer: '" + address +
        "' is not an IPv4 dotted-quad bind address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("HttpServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = parsed;
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("HttpServer: cannot listen on " + address +
                             ':' + std::to_string(port) + " (" +
                             std::strerror(err) + ")");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("HttpServer: getsockname() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  address_ = address;
}

void HttpServer::start() {
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: bind() before start()");
  }
  if (running_.load()) return;
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void HttpServer::serve_loop() {
  while (!stop_requested_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short poll timeout so stop() is honored promptly even when idle.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
  running_.store(false);
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of the request head (or a sane cap); HTTP/1.0 GETs
  // have no body, so the request line is all we need.
  std::string req;
  char buf[2048];
  while (req.size() < 16 * 1024 &&
         req.find("\r\n\r\n") == std::string::npos &&
         req.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<std::size_t>(n));
  }
  http_metrics().requests.add();

  HttpResponse resp;
  const auto line_end = req.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? req : req.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    resp = {405, "text/plain; charset=utf-8", "only GET is served\n"};
  } else {
    // The query string (if any) is passed through: handlers that take
    // parameters (/plan?machine=...) parse it themselves; the standard
    // exporter endpoints strip it in ExporterEndpoints::respond.
    const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    try {
      resp = handler_(path);
    } catch (const std::exception& e) {
      resp = {500, "text/plain; charset=utf-8",
              std::string("error: ") + e.what() + '\n'};
    }
  }
  if (resp.status >= 400) http_metrics().errors.add();
  write_all(fd, render_response(resp));
}

HttpResponse ExporterEndpoints::respond(const std::string& raw_path) const {
  // The standard endpoints take no parameters; dispatch on the bare path.
  std::string path = raw_path;
  if (const auto q = path.find('?'); q != std::string::npos) {
    path.resize(q);
  }
  if (path == "/metrics") {
    RegistrySnapshot snap = registry_.snapshot();
    // Precomputed per-second rates between the last two series frames, so
    // a scraper gets first-derivative counters without doing its own
    // delta bookkeeping on the producer's (possibly simulated) clock.
    for (const auto& rate : series_.counter_rates()) {
      snap.gauges.push_back(
          {rate.name + "_rate",
           "Per-second rate of " + rate.name +
               " between the last two snapshot frames.",
           rate.rate});
    }
    std::sort(snap.gauges.begin(), snap.gauges.end(),
              [](const GaugeSnapshot& a, const GaugeSnapshot& b) {
                return a.name < b.name;
              });
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            snap.to_prometheus()};
  }
  if (path == "/healthz") {
    return {200, "text/plain; charset=utf-8", "ok\n"};
  }
  if (path == "/readyz") {
    if (ready_.load()) return {200, "text/plain; charset=utf-8", "ready\n"};
    return {503, "text/plain; charset=utf-8", "not ready\n"};
  }
  if (path == "/snapshot.json") {
    const auto frame = series_.latest();
    if (!frame.has_value()) {
      return {404, "application/json", "{\"error\":\"no frame yet\"}\n"};
    }
    return {200, "application/json", frame->to_json() + '\n'};
  }
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

HttpGetResult http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("http_get: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("http_get: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!write_all(fd, req)) {
    ::close(fd);
    throw std::runtime_error("http_get: write failed");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  HttpGetResult result;
  const auto head_end = raw.find("\r\n\r\n");
  const std::string head =
      head_end == std::string::npos ? raw : raw.substr(0, head_end);
  if (head_end != std::string::npos) {
    result.body = raw.substr(head_end + 4);
  }
  // Status line: "HTTP/1.0 200 OK".
  const auto sp = head.find(' ');
  if (sp != std::string::npos) {
    result.status = std::atoi(head.c_str() + sp + 1);
  }
  // Headers are case-insensitive per RFC, but we only ever talk to
  // ourselves; match the casing render_response emits.
  const std::string needle = "Content-Type: ";
  if (const auto ct = head.find(needle); ct != std::string::npos) {
    const auto end = head.find("\r\n", ct);
    result.content_type =
        head.substr(ct + needle.size(),
                    end == std::string::npos ? std::string::npos
                                             : end - ct - needle.size());
  }
  return result;
}

}  // namespace harvest::obs
