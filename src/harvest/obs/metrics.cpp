#include "harvest/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "harvest/obs/json.hpp"

namespace harvest::obs {
namespace {

// Lock-free running min/max over a relaxed atomic<double>. "No observation
// yet" is the +-inf sentinel, which any finite value displaces; snapshot()
// masks the sentinels behind its count == 0 check.
void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < bucket_counts.size(); ++b) {
    const std::uint64_t in_bucket = bucket_counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (b >= bounds.size()) return max;  // overflow bucket
      const double upper = bounds[b];
      const double lower = (b == 0) ? std::min(min, upper) : bounds[b - 1];
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + std::clamp(frac, 0.0, 1.0) * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_bounds() : std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  if (!std::isfinite(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot(std::string name) const {
  HistogramSnapshot snap;
  snap.name = std::move(name);
  snap.bounds = bounds_;
  snap.bucket_counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.bucket_counts.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  snap.p50 = snap.quantile(0.50);
  snap.p90 = snap.quantile(0.90);
  snap.p99 = snap.quantile(0.99);
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  std::size_t n) {
  if (!(lo > 0.0) || !(hi > lo) || n < 2) {
    throw std::invalid_argument(
        "Histogram::exponential_bounds: need 0 < lo < hi and n >= 2");
  }
  std::vector<double> bounds(n);
  const double step = (std::log(hi) - std::log(lo)) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    bounds[i] = std::exp(std::log(lo) + step * static_cast<double>(i));
  }
  bounds.back() = hi;  // kill the round-trip error on the last bound
  return bounds;
}

std::vector<double> Histogram::default_bounds() {
  return exponential_bounds(1e-6, 1e7, 40);
}

SketchSnapshot Sketch::snapshot(std::string name) const {
  std::lock_guard lock(mutex_);
  SketchSnapshot snap;
  snap.name = std::move(name);
  snap.count = sketch_.count();
  snap.sum = sketch_.sum();
  snap.min = sketch_.min();
  snap.max = sketch_.max();
  snap.p50 = sketch_.quantile(0.50);
  snap.p90 = sketch_.quantile(0.90);
  snap.p99 = sketch_.quantile(0.99);
  snap.relative_error = sketch_.relative_error();
  return snap;
}

std::string RegistrySnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : gauges) w.field(g.name, g.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("mean", h.mean());
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("p50", h.p50);
    w.field("p90", h.p90);
    w.field("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.key("sketches").begin_object();
  for (const auto& s : sketches) {
    w.key(s.name).begin_object();
    w.field("count", s.count);
    w.field("sum", s.sum);
    w.field("mean", s.mean());
    w.field("min", s.min);
    w.field("max", s.max);
    w.field("p50", s.p50);
    w.field("p90", s.p90);
    w.field("p99", s.p99);
    w.field("relative_error", s.relative_error);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted
/// names map '.' and '-' to '_'; anything else unexpected degrades to '_'
/// too rather than emitting an invalid exposition.
std::string sanitize_prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

/// HELP text needs \ and newline escaped per the exposition format (a
/// double quote is legal verbatim in HELP, unlike in label values).
std::string escape_prom_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Label values need \ " and newline escaped per the exposition format.
std::string escape_prom_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Render `{a="x",b="y"}` (or "" with no labels); `extra` appends one more
/// pair (used for histogram `le`).
std::string prom_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key = {}, const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_prom_name(k) + "=\"" + escape_prom_label(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + escape_prom_label(extra_value) + "\"";
  }
  out += '}';
  return out;
}

/// Prometheus floats: plain shortest-round-trip decimal; +Inf spelled out.
std::string prom_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string RegistrySnapshot::to_prometheus(
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  std::string out;
  const std::string label_str = prom_labels(labels);
  const auto help_line = [&out](const std::string& name,
                                const std::string& help) {
    if (!help.empty()) {
      out += "# HELP " + name + ' ' + escape_prom_help(help) + '\n';
    }
  };
  for (const auto& c : counters) {
    const std::string name = sanitize_prom_name(c.name) + "_total";
    help_line(name, c.help);
    out += "# TYPE " + name + " counter\n";
    out += name + label_str + ' ' + std::to_string(c.value) + '\n';
  }
  for (const auto& g : gauges) {
    const std::string name = sanitize_prom_name(g.name);
    help_line(name, g.help);
    out += "# TYPE " + name + " gauge\n";
    out += name + label_str + ' ' + prom_double(g.value) + '\n';
  }
  for (const auto& h : histograms) {
    const std::string name = sanitize_prom_name(h.name);
    help_line(name, h.help);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      cumulative += h.bucket_counts[b];
      const std::string le = b < h.bounds.size()
                                 ? prom_double(h.bounds[b])
                                 : "+Inf";
      out += name + "_bucket" + prom_labels(labels, "le", le) + ' ' +
             std::to_string(cumulative) + '\n';
    }
    if (h.bucket_counts.empty()) {
      // The format requires the +Inf bucket even when the histogram has no
      // explicit buckets (e.g. a hand-built or not-yet-observed snapshot).
      out += name + "_bucket" + prom_labels(labels, "le", "+Inf") + ' ' +
             std::to_string(h.count) + '\n';
    }
    out += name + "_sum" + label_str + ' ' + prom_double(h.sum) + '\n';
    out += name + "_count" + label_str + ' ' + std::to_string(h.count) + '\n';
  }
  for (const auto& s : sketches) {
    const std::string name = sanitize_prom_name(s.name);
    help_line(name, s.help);
    out += "# TYPE " + name + " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", s.p50}, {"0.9", s.p90}, {"0.99", s.p99}};
    for (const auto& [q, v] : quantiles) {
      out += name + prom_labels(labels, "quantile", q) + ' ' +
             prom_double(v) + '\n';
    }
    out += name + "_sum" + label_str + ' ' + prom_double(s.sum) + '\n';
    out += name + "_count" + label_str + ' ' + std::to_string(s.count) + '\n';
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = histograms_.find(name); it != histograms_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Sketch& MetricsRegistry::sketch(std::string_view name,
                                double relative_error) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = sketches_.find(name); it != sketches_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = sketches_[std::string(name)];
  if (!slot) slot = std::make_unique<Sketch>(relative_error);
  return *slot;
}

void MetricsRegistry::describe(std::string_view name,
                               std::string_view help) {
  std::unique_lock lock(mutex_);
  help_[std::string(name)] = std::string(help);
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::shared_lock lock(mutex_);
  const auto help_of = [this](const std::string& name) {
    const auto it = help_.find(name);
    return it != help_.end() ? it->second : std::string{};
  };
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, help_of(name), c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, help_of(name), g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    auto hs = h->snapshot(name);
    hs.help = help_of(name);
    snap.histograms.push_back(std::move(hs));
  }
  snap.sketches.reserve(sketches_.size());
  for (const auto& [name, s] : sketches_) {
    auto ss = s->snapshot(name);
    ss.help = help_of(name);
    snap.sketches.push_back(std::move(ss));
  }
  return snap;
}

std::string MetricsRegistry::snapshot_json() const {
  return snapshot().to_json();
}

std::string MetricsRegistry::prometheus_text(
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  return snapshot().to_prometheus(labels);
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: cannot open " +
                             path);
  }
  out << snapshot_json() << '\n';
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: write failed: " +
                             path);
  }
}

void MetricsRegistry::write_prometheus(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(
        "MetricsRegistry::write_prometheus: cannot open " + path);
  }
  out << prometheus_text();
  if (!out) {
    throw std::runtime_error(
        "MetricsRegistry::write_prometheus: write failed: " + path);
  }
}

void MetricsRegistry::reset() {
  std::shared_lock lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  for (const auto& [name, s] : sketches_) s->reset();
}

MetricsRegistry& default_registry() {
  static auto* registry = new MetricsRegistry();  // intentionally leaked
  return *registry;
}

}  // namespace harvest::obs
