// Thread-safe metrics for the fit → plan → simulate pipeline: monotone
// counters, last-value/accumulating gauges, and fixed-bucket histograms
// with quantile extraction. A process-wide default registry serves the
// library's built-in instrumentation; callers who need isolation (tests,
// per-family bench runs) inject their own MetricsRegistry instance.
//
// Concurrency model: every metric handle is lock-free on the write path
// (relaxed atomics — metrics never synchronize other data), so workers of
// util::ThreadPool can hammer the same counter without serialization. The
// registry's name → handle map takes a shared_mutex, so the idiomatic hot
// path caches the handle once:
//
//   static auto& evals = obs::default_registry().counter("foo.evals");
//   evals.add();
//
// Handles remain valid for the registry's lifetime; reset() zeroes values
// in place without invalidating them.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harvest/obs/quantile_sketch.hpp"

namespace harvest::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Floating-point level. `set` for instantaneous readings, `add` for
/// accumulating quantities whose unit is fractional (e.g. megabytes moved).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Immutable point-in-time view of one histogram, with the derived
/// statistics the exporters need.
struct HistogramSnapshot {
  std::string name;
  std::string help;  ///< optional HELP text (see MetricsRegistry::describe)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;               ///< bucket upper bounds
  std::vector<std::uint64_t> bucket_counts; ///< bounds.size() + 1 (overflow)

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Quantile from the bucket counts by linear interpolation inside the
  /// containing bucket; the overflow bucket reports the observed max.
  [[nodiscard]] double quantile(double q) const;
};

/// Fixed-bucket histogram. Buckets are upper bounds in ascending order plus
/// an implicit +inf overflow bucket; observations are counted in the first
/// bucket whose bound is >= the value.
class Histogram {
 public:
  /// Empty `bounds` uses default_bounds().
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Approximate under concurrent writes (reads each atomic once).
  [[nodiscard]] HistogramSnapshot snapshot(std::string name = {}) const;
  [[nodiscard]] double quantile(double q) const {
    return snapshot().quantile(q);
  }
  void reset();

  /// `n` log-spaced upper bounds covering [lo, hi] inclusive.
  [[nodiscard]] static std::vector<double> exponential_bounds(double lo,
                                                              double hi,
                                                              std::size_t n);
  /// 1 µs … 10⁷ (seconds-flavored but unitless), 40 buckets — wide enough
  /// for both wall times and simulated phase durations.
  [[nodiscard]] static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +-inf sentinels mean "no observation yet"; snapshot() reports 0 then.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Immutable point-in-time view of one registry sketch.
struct SketchSnapshot {
  std::string name;
  std::string help;  ///< optional HELP text (see MetricsRegistry::describe)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double relative_error = QuantileSketch::kDefaultRelativeError;

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Registry instrument wrapping a QuantileSketch. Unlike the fixed-bucket
/// Histogram (lock-free, bounded relative resolution only inside its
/// preset bucket range), a Sketch guarantees a relative-error bound at any
/// scale and merges *exactly* — per-shard/per-thread sketches fold to the
/// same bytes in any order. The trade: the write path takes a mutex (the
/// bucket table grows), so Sketch suits fold-ins and moderate-rate
/// observations rather than per-event hammering from many threads.
class Sketch {
 public:
  explicit Sketch(
      double relative_error = QuantileSketch::kDefaultRelativeError)
      : sketch_(relative_error) {}

  void observe(double v) {
    std::lock_guard lock(mutex_);
    sketch_.add(v);
  }
  /// Exact fold of a locally-built sketch (e.g. one shard's distribution).
  void merge_from(const QuantileSketch& other) {
    std::lock_guard lock(mutex_);
    sketch_.merge(other);
  }
  [[nodiscard]] std::uint64_t count() const {
    std::lock_guard lock(mutex_);
    return sketch_.count();
  }
  /// Copy of the underlying sketch (for further merging or encode()).
  [[nodiscard]] QuantileSketch snapshot_sketch() const {
    std::lock_guard lock(mutex_);
    return sketch_;
  }
  [[nodiscard]] SketchSnapshot snapshot(std::string name = {}) const;
  void reset() {
    std::lock_guard lock(mutex_);
    sketch_.clear();
  }

 private:
  mutable std::mutex mutex_;
  QuantileSketch sketch_;
};

struct CounterSnapshot {
  std::string name;
  std::string help;  ///< optional HELP text (see MetricsRegistry::describe)
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;  ///< optional HELP text (see MetricsRegistry::describe)
  double value = 0.0;
};

/// Full registry snapshot, sorted by metric name within each kind.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SketchSnapshot> sketches;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// mean, min, max, p50, p90, p99}}, "sketches": {name: {count, sum, mean,
  /// min, max, p50, p90, p99, relative_error}}}
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (version 0.0.4): counters become
  /// `<name>_total`, gauges expose as-is, sketches emit as summaries
  /// (`<name>{quantile="..."}` plus `_sum`/`_count`), histograms emit the
  /// conventional cumulative `<name>_bucket{le="..."}` series plus `_sum` and `_count`
  /// (a histogram with no buckets still emits its `+Inf` bucket, which the
  /// format requires). Metric names are sanitized ('.', '-' → '_'); a
  /// `# HELP` line precedes `# TYPE` for metrics with help text (escaped
  /// per the format: `\` and newline); an optional `{key="value"}` label
  /// set taken from `labels` is attached to every sample (useful to tag a
  /// scrape with family/policy/run id) with `\`, `"`, and newline escaped
  /// in the values.
  [[nodiscard]] std::string to_prometheus(
      const std::vector<std::pair<std::string, std::string>>& labels =
          {}) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find or create. The returned reference lives as long as the registry.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` only applies on first creation; later callers get the
  /// existing histogram regardless of the bounds they pass.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});
  /// `relative_error` only applies on first creation, like histogram bounds.
  Sketch& sketch(std::string_view name,
                 double relative_error = QuantileSketch::kDefaultRelativeError);

  /// Attach HELP text to a metric name (any kind, before or after the
  /// metric exists). Snapshots carry it and the Prometheus exposition
  /// emits it as a `# HELP` line. Re-describing overwrites.
  void describe(std::string_view name, std::string_view help);

  [[nodiscard]] RegistrySnapshot snapshot() const;
  /// snapshot().to_json() in one call.
  [[nodiscard]] std::string snapshot_json() const;
  /// snapshot().to_prometheus() in one call.
  [[nodiscard]] std::string prometheus_text(
      const std::vector<std::pair<std::string, std::string>>& labels =
          {}) const;
  /// Write snapshot_json() to `path` (throws std::runtime_error on I/O
  /// failure).
  void write_json(const std::string& path) const;
  /// Write prometheus_text() to `path` — a node_exporter textfile-collector
  /// style drop (throws std::runtime_error on I/O failure).
  void write_prometheus(const std::string& path) const;

  /// Zero every metric in place; existing handles stay valid.
  void reset();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Sketch>, std::less<>> sketches_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// The process-wide registry used by the library's built-in
/// instrumentation. Never destroyed (safe to touch from static
/// destructors).
[[nodiscard]] MetricsRegistry& default_registry();

}  // namespace harvest::obs
