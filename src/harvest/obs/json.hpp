// Minimal streaming JSON writer — just enough for the observability
// exports (metrics snapshots, trace files, bench artifacts). Emits
// syntactically valid JSON with proper string escaping and locale-proof
// number formatting; no DOM, no parsing. Nesting is tracked so commas and
// closing brackets are placed automatically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace harvest::obs {

/// Escape a string for inclusion inside JSON quotes (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Render a double the way JSON expects: finite values via shortest
/// round-trip formatting, non-finite values as null (JSON has no inf/nan).
[[nodiscard]] std::string json_number(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a pre-rendered JSON value verbatim (e.g. a snapshot another
  /// writer produced). The caller vouches for its validity.
  JsonWriter& raw(std::string_view json);

  /// key(name) + value(v) in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// The document built so far. Valid JSON once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true = object (expects keys).
  std::vector<bool> stack_;
  /// Whether the current container already holds at least one element.
  std::vector<bool> has_elements_;
  bool after_key_ = false;
};

}  // namespace harvest::obs
