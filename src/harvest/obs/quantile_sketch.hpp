// Mergeable relative-error quantile sketch (DDSketch-style). Values land in
// log-spaced buckets indexed by ceil(log_gamma(v)), so every reported
// quantile is within a multiplicative `relative_error` of some observed
// value, regardless of the data's scale or spread. Unlike the fixed-bucket
// obs::Histogram, sketches from different shards/threads merge *exactly* —
// merge() adds integer bucket counts — which makes the fold order
// irrelevant: any merge tree over the same inputs yields the same bucket
// table, and encode() serializes only order-independent state so the merged
// bytes are identical at any thread count. That is the property the sharded
// PhaseProfiler (obs/prof.hpp) builds on.
//
// Not thread-safe; one writer at a time. The registry wraps it in
// obs::Sketch (metrics.hpp) for concurrent use.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace harvest::obs {

class QuantileSketch {
 public:
  static constexpr double kDefaultRelativeError = 0.01;

  /// `relative_error` must be in (0, 1); throws std::invalid_argument.
  explicit QuantileSketch(double relative_error = kDefaultRelativeError);

  /// Record `n` observations of `v`. Values <= 0 (and non-finite values
  /// clamped by the caller's domain — durations here) count in the exact
  /// zero bucket; NaN is ignored.
  void add(double v, std::uint64_t n = 1);

  /// Exact merge: adds the other sketch's bucket counts into this one.
  /// Commutative and associative over any fold order. Throws
  /// std::invalid_argument if the relative errors differ.
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// 0 when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Value at rank floor(q * (count - 1)); within relative_error() of the
  /// observed value at that rank. 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double relative_error() const { return alpha_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  void clear();

  /// Canonical byte encoding of the order-independent state (relative
  /// error, counts, min/max, bucket table in ascending index order). Two
  /// sketches built from the same multiset of adds — in any order, via any
  /// merge tree — encode to identical bytes. The floating-point `sum` is
  /// deliberately excluded: its value depends on addition order at the ulp
  /// level.
  [[nodiscard]] std::string encode() const;
  /// Inverse of encode(); throws std::invalid_argument on malformed input.
  [[nodiscard]] static QuantileSketch decode(const std::string& bytes);

 private:
  [[nodiscard]] std::int32_t bucket_index(double v) const;
  [[nodiscard]] double bucket_value(std::int32_t index) const;

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  double sum_ = 0.0;
  double min_;
  double max_;
  /// bucket index -> count; ordered so iteration (and encode) is canonical.
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace harvest::obs
