// RAII wall-clock timers feeding MetricsRegistry histograms. Timing is off
// by default so instrumented hot paths cost one relaxed atomic load when
// nobody is measuring; `--metrics-json` / `--json` front ends (and tests)
// flip it on for the process.
#pragma once

#include <atomic>
#include <chrono>

#include "harvest/obs/metrics.hpp"

namespace harvest::obs {

/// Process-wide switch for ScopedTimer (and any caller that wants to gate
/// more expensive instrumentation). Relaxed semantics: flips are advisory,
/// not synchronization points.
void set_timing_enabled(bool enabled);
[[nodiscard]] bool timing_enabled();

/// Measures its own lifetime and records the elapsed seconds into a wall
/// time histogram. Inert (no clock read) when timing is globally disabled
/// or constructed with a null histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink)
      : sink_(timing_enabled() ? sink : nullptr) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe(elapsed_seconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (0 when inert).
  [[nodiscard]] double elapsed_seconds() const {
    if (sink_ == nullptr) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Record now and detach (the destructor becomes a no-op).
  void stop() {
    if (sink_ != nullptr) {
      sink_->observe(elapsed_seconds());
      sink_ = nullptr;
    }
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace harvest::obs
