// Structured event tracing for the fit → plan → simulate pipeline. Typed
// events (EM fit started/converged, optimizer brackets, sim phase
// transitions, transfer starts/cutoffs, evictions…) land in an in-memory
// ring and export as either JSONL (one event per line, grep/jq-friendly)
// or the Chrome trace_event format, so a simulated timeline can be
// inspected visually in chrome://tracing or https://ui.perfetto.dev.
//
// Timestamps are whatever clock the producer uses — simulated seconds for
// the simulators, which is exactly what makes the Chrome view useful: the
// rendered timeline IS the simulated machine's recovery/work/checkpoint
// cycle, not the host's wall clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace harvest::obs {

/// How an event occupies time: a span with a duration, or a point marker.
enum class TracePhase : std::uint8_t { kComplete, kInstant };

struct TraceEvent {
  std::string name;      ///< e.g. "work", "checkpoint.interrupted", "em.run"
  std::string category;  ///< subsystem: "sim", "fit", "net", "condor", …
  TracePhase phase = TracePhase::kComplete;
  double start_s = 0.0;     ///< event start on the producer's clock
  double duration_s = 0.0;  ///< 0 for instants
  std::uint64_t id = 0;     ///< producer-defined: period index, job id, …
  double value = 0.0;       ///< payload: bytes moved, loglik delta, …
  /// Timeline track the event renders on (Chrome trace tid). Producers that
  /// simulate many actors in parallel give each its own track — the pool
  /// simulator uses the machine index, so the Chrome view is a pool-wide
  /// placement/eviction gantt instead of one merged lane.
  std::uint64_t tid = 0;
};

/// Thread-safe bounded event ring. When full, the oldest events are
/// overwritten and counted in dropped(); capacity 0 means unbounded (used
/// by producers that must not lose events, e.g. the job simulator while
/// reconstructing its result timeline).
class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit EventTracer(std::size_t capacity = kDefaultCapacity);

  void record(TraceEvent event);
  void record_complete(std::string name, std::string category, double start_s,
                       double duration_s, std::uint64_t id = 0,
                       double value = 0.0, std::uint64_t tid = 0);
  void record_instant(std::string name, std::string category, double at_s,
                      std::uint64_t id = 0, double value = 0.0,
                      std::uint64_t tid = 0);

  /// Events in record order (oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  /// One JSON object per line:
  /// {"name":…,"cat":…,"ph":"X","ts":…,"dur":…,"id":…,"value":…}
  [[nodiscard]] std::string to_jsonl() const;
  /// Chrome trace_event JSON object format ({"traceEvents":[…]}), ts/dur in
  /// microseconds as the format requires.
  [[nodiscard]] std::string to_chrome_trace() const;
  void write_jsonl(const std::string& path) const;
  void write_chrome_trace(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;       ///< 0 = unbounded
  std::size_t next_ = 0;       ///< ring write cursor (bounded mode)
  std::uint64_t recorded_ = 0; ///< total record() calls ever
};

/// Process-wide tracer fed by the library's built-in instrumentation
/// (bounded ring; old events are dropped under pressure). Never destroyed.
[[nodiscard]] EventTracer& default_tracer();

}  // namespace harvest::obs
