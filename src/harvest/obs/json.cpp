#include "harvest/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace harvest::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "null";
  std::string s(buf, end);
  // to_chars shortest form may be bare-integer ("3") or exponent ("1e+20");
  // both are valid JSON numbers, so no fixup needed.
  return s;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  stack_.push_back(true);
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  stack_.push_back(false);
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (has_elements_.back()) out_ += ',';
  has_elements_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string_view(s));
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma_if_needed();
  out_ += json;
  return *this;
}

}  // namespace harvest::obs
