// Engine self-profiling: a sharded wall-clock phase profiler. Every other
// obs instrument observes *simulated* time; this one observes where the
// engine spends *host* time, attributed to named phases ("negotiate",
// "spell-advance", "matchmake", …) per shard and per thread.
//
// Design:
//  - Phases are interned strings (phase_id) so a scope guard carries a
//    16-bit id, not a string.
//  - PROF_PHASE("name") opens a ScopedPhase tied to the process-wide
//    *active* profiler. With no profiler active the guard is inert: one
//    atomic load, no clock read, no allocation — which is how profiling
//    stays off by default behind obs::RuntimeHooks::profiler with the
//    established purity contract (bit-identical sim results either way;
//    profiling reads wall clocks and touches no random stream).
//  - Scopes nest; each guard accumulates **self time** (its elapsed time
//    minus the elapsed time of guards opened inside it) into a per-thread
//    slab keyed by (parent phase, phase, shard). Per-thread slabs mean the
//    hot path never contends across threads; report() folds the slabs.
//  - Each (parent, phase, shard, thread) cell keeps a QuantileSketch of
//    per-scope self times. Sketch merges are exact over bucket counts, so
//    the folded distribution is byte-deterministic at any thread count.
//
// Conservation invariant (tested): for every thread, the summed self time
// of its wall-clock phases is <= the thread's observed wall time (first to
// last activity). Phases recorded via record() are *latency* observations
// (e.g. thread-pool queue wait: many jobs wait concurrently) and are
// excluded from the invariant; reports mark them "latency".
//
// Lifecycle contract: set_active(p) publishes the profiler to every thread;
// deactivate (set_active(nullptr) or ActivationScope destruction) only when
// no scope guard is open on any thread — in practice engines close all
// worker scopes before their ThreadPool joins. The profiler must outlive
// its active window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "harvest/obs/quantile_sketch.hpp"
#include "harvest/obs/tracer.hpp"

namespace harvest::obs::prof {

/// Intern a phase name (process-wide, append-only). Ids are dense and
/// stable for the process lifetime; at most 65535 distinct phases.
[[nodiscard]] std::uint16_t phase_id(std::string_view name);
/// Name for an interned id; empty for kNoPhase / unknown ids.
[[nodiscard]] std::string_view phase_name(std::uint16_t id);

inline constexpr std::uint16_t kNoPhase = 0xffff;
inline constexpr std::uint32_t kNoShard = 0xffffffffu;

struct PhaseProfilerOptions {
  /// Relative error of the per-phase self-time sketches.
  double sketch_relative_error = QuantileSketch::kDefaultRelativeError;
  /// Also record every scope as a Chrome-trace complete event (one trace
  /// track per thread) for flame-graph export. Off by default: the
  /// aggregate slabs are cheap, per-scope events are not free.
  bool capture_events = false;
  /// Bounded ring capacity for captured events (oldest dropped when full).
  std::size_t event_capacity = EventTracer::kDefaultCapacity;
};

/// One folded (parent, phase, shard) row of a ProfileReport.
struct PhaseStat {
  std::string name;
  std::string parent;            ///< empty for top-level phases
  std::uint32_t shard = kNoShard;
  bool latency = false;          ///< recorded via record(); no wall claim
  std::uint64_t count = 0;
  double self_s = 0.0;
  QuantileSketch sketch{};       ///< per-scope self times
};

struct ThreadProfile {
  std::size_t thread = 0;        ///< registration-order index
  double wall_s = 0.0;           ///< first to last observed activity
  double self_total_s = 0.0;     ///< Σ wall-phase self time on this thread
};

struct ProfileReport {
  double relative_error = QuantileSketch::kDefaultRelativeError;
  /// Rows sorted by (parent, name, shard); shard == kNoShard rows first.
  std::vector<PhaseStat> phases;
  std::vector<ThreadProfile> threads;
  /// Σ self <= wall held on every thread (small clock-rounding slack).
  bool conservation_ok = true;
  double max_thread_excess_s = 0.0;

  /// Total self time / scope count across all rows named `name`.
  [[nodiscard]] double self_seconds(std::string_view name) const;
  [[nodiscard]] std::uint64_t scope_count(std::string_view name) const;

  /// Phase tree with sketch quantiles:
  /// {"relative_error", "conservation_ok", "threads": [...],
  ///  "phases": [{name, kind, count, self_s, p50_s, p90_s, p99_s, max_s,
  ///              shards?: [...], children: [...]}]}
  [[nodiscard]] std::string to_json() const;
};

class PhaseProfiler {
 public:
  explicit PhaseProfiler(PhaseProfilerOptions options = {});
  ~PhaseProfiler();

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  [[nodiscard]] const PhaseProfilerOptions& options() const {
    return options_;
  }

  /// Fold every thread slab into one report. Safe to call while scopes are
  /// still being opened (harvestd serves /profile.json live); rows then
  /// reflect a consistent per-thread prefix.
  [[nodiscard]] ProfileReport report() const;

  /// Captured scope events (nullptr unless options().capture_events).
  [[nodiscard]] const EventTracer* events() const { return tracer_.get(); }
  /// Flame export: write captured events in Chrome trace_event format.
  /// Throws std::runtime_error when event capture is disabled.
  void write_chrome_trace(const std::string& path) const;

  /// Drop all accumulated data (slabs and captured events). Threads stay
  /// registered. Not concurrency-safe against open scopes.
  void clear();

  // Implementation detail below (public so the scope-guard hot path can
  // reach the calling thread's slab without indirection).
  struct Slot {
    std::uint64_t count = 0;
    double self_s = 0.0;
    bool latency = false;
    QuantileSketch sketch;

    explicit Slot(double relative_error) : sketch(relative_error) {}
  };

  struct ThreadState {
    std::thread::id owner;
    std::size_t index = 0;
    class ScopedPhase* top = nullptr;  ///< owner thread only
    std::uint64_t first_ns = 0;
    std::uint64_t last_ns = 0;
    mutable std::mutex mutex;          ///< guards slots + last_ns
    /// (parent << 48) | (phase << 32) | shard — ordered for determinism.
    std::map<std::uint64_t, Slot> slots;
  };

  /// Register-or-find the calling thread's slab.
  ThreadState* thread_state();

 private:
  friend class ScopedPhase;
  friend void record(std::uint16_t, double, std::uint32_t);

  PhaseProfilerOptions options_;
  std::unique_ptr<EventTracer> tracer_;
  std::uint64_t epoch_ns_ = 0;
  mutable std::mutex threads_mutex_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
};

/// The process-wide active profiler (nullptr when profiling is off).
[[nodiscard]] PhaseProfiler* active();
/// Publish `p` as the active profiler (nullptr deactivates). See the
/// lifecycle contract at the top of this header.
void set_active(PhaseProfiler* p);

/// RAII activation: installs `p` if non-null, restores the previous active
/// profiler on destruction. A null `p` is a no-op scope, which is how the
/// engines honor an unset obs::RuntimeHooks::profiler.
class ActivationScope {
 public:
  explicit ActivationScope(PhaseProfiler* p);
  ~ActivationScope();

  ActivationScope(const ActivationScope&) = delete;
  ActivationScope& operator=(const ActivationScope&) = delete;

 private:
  PhaseProfiler* previous_ = nullptr;
  bool installed_ = false;
};

/// Wall-clock scope guard; see PROF_PHASE. Inert when no profiler is
/// active at construction.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::uint16_t phase,
                       std::uint32_t shard = kNoShard);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  friend class PhaseProfiler;
  friend void record(std::uint16_t, double, std::uint32_t);

  PhaseProfiler* profiler_ = nullptr;       ///< null = inert
  PhaseProfiler::ThreadState* state_ = nullptr;
  ScopedPhase* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  double child_s_ = 0.0;
  std::uint16_t phase_ = kNoPhase;
  std::uint16_t parent_phase_ = kNoPhase;
  std::uint32_t shard_ = kNoShard;
};

/// Record a pre-measured latency observation (e.g. queue wait) against
/// `phase`. Latency rows are excluded from the conservation invariant —
/// unlike scope self time, concurrent waits legitimately sum past wall
/// time. No-op when no profiler is active.
void record(std::uint16_t phase, double seconds,
            std::uint32_t shard = kNoShard);

}  // namespace harvest::obs::prof

// Scope-guard entry points. The interned id is resolved once per call site
// (thread-safe magic static), so a disabled guard costs one atomic load.
#define HARVEST_PROF_CONCAT_INNER(a, b) a##b
#define HARVEST_PROF_CONCAT(a, b) HARVEST_PROF_CONCAT_INNER(a, b)

#define PROF_PHASE(name)                                                   \
  static const std::uint16_t HARVEST_PROF_CONCAT(harvest_prof_id_,         \
                                                 __LINE__) =               \
      ::harvest::obs::prof::phase_id(name);                                \
  ::harvest::obs::prof::ScopedPhase HARVEST_PROF_CONCAT(                   \
      harvest_prof_scope_, __LINE__)(                                      \
      HARVEST_PROF_CONCAT(harvest_prof_id_, __LINE__))

#define PROF_PHASE_SHARD(name, shard)                                      \
  static const std::uint16_t HARVEST_PROF_CONCAT(harvest_prof_id_,         \
                                                 __LINE__) =               \
      ::harvest::obs::prof::phase_id(name);                                \
  ::harvest::obs::prof::ScopedPhase HARVEST_PROF_CONCAT(                   \
      harvest_prof_scope_, __LINE__)(                                      \
      HARVEST_PROF_CONCAT(harvest_prof_id_, __LINE__),                     \
      static_cast<std::uint32_t>(shard))
