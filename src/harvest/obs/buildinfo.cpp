#include "harvest/obs/buildinfo.hpp"

#include "harvest/obs/json.hpp"

// Definitions are injected by src/harvest/obs/CMakeLists.txt; the fallbacks
// keep the file compiling standalone (e.g. in a tooling build).
#ifndef HARVEST_VERSION
#define HARVEST_VERSION "unknown"
#endif
#ifndef HARVEST_GIT_SHA
#define HARVEST_GIT_SHA "unknown"
#endif
#ifndef HARVEST_BUILD_TYPE
#define HARVEST_BUILD_TYPE "unknown"
#endif
#ifndef HARVEST_SANITIZER_FLAGS
#define HARVEST_SANITIZER_FLAGS ""
#endif

namespace harvest::obs {
namespace {

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string detect_standard() {
#if __cplusplus >= 202302L
  return "c++23";
#elif __cplusplus >= 202002L
  return "c++20";
#else
  return "pre-c++20";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{
      HARVEST_VERSION,         HARVEST_GIT_SHA, detect_compiler(),
      HARVEST_BUILD_TYPE,      HARVEST_SANITIZER_FLAGS,
      detect_standard()};
  return info;
}

std::string BuildInfo::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("version", version);
  w.field("git_sha", git_sha);
  w.field("compiler", compiler);
  w.field("build_type", build_type);
  w.field("sanitizers", sanitizers);
  w.field("cxx_standard", cxx_standard);
  w.end_object();
  return w.str();
}

std::string build_info_json() { return build_info().to_json(); }

}  // namespace harvest::obs
