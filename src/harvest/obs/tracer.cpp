#include "harvest/obs/tracer.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "harvest/obs/json.hpp"
#include "harvest/obs/metrics.hpp"

namespace harvest::obs {
namespace {

/// Process-wide overwrite count: every tracer (default or caller-owned)
/// bumps it when a full ring swallows an event, so a scrape of the default
/// registry reveals truncated traces even when nobody polls dropped().
Counter& tracer_dropped_counter() {
  static Counter& c = default_registry().counter("obs.tracer.dropped");
  return c;
}

void append_event_json(JsonWriter& w, const TraceEvent& e, bool chrome) {
  // Chrome's trace_event format wants microseconds; JSONL keeps the
  // producer's native unit (seconds).
  const double scale = chrome ? 1e6 : 1.0;
  w.begin_object();
  w.field("name", e.name);
  w.field("cat", e.category);
  w.field("ph", e.phase == TracePhase::kComplete ? "X" : "i");
  w.field("ts", e.start_s * scale);
  if (e.phase == TracePhase::kComplete) w.field("dur", e.duration_s * scale);
  if (chrome) {
    w.field("pid", 1);
    w.field("tid", e.tid);
    if (e.phase == TracePhase::kInstant) w.field("s", "g");
    w.key("args").begin_object();
    w.field("id", e.id);
    w.field("value", e.value);
    w.end_object();
  } else {
    w.field("id", e.id);
    w.field("value", e.value);
    w.field("tid", e.tid);
  }
  w.end_object();
}

}  // namespace

EventTracer::EventTracer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void EventTracer::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  if (capacity_ == 0 || ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    if (capacity_ > 0) next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
    tracer_dropped_counter().add();
  }
  ++recorded_;
}

void EventTracer::record_complete(std::string name, std::string category,
                                  double start_s, double duration_s,
                                  std::uint64_t id, double value,
                                  std::uint64_t tid) {
  record(TraceEvent{std::move(name), std::move(category),
                    TracePhase::kComplete, start_s, duration_s, id, value,
                    tid});
}

void EventTracer::record_instant(std::string name, std::string category,
                                 double at_s, std::uint64_t id, double value,
                                 std::uint64_t tid) {
  record(TraceEvent{std::move(name), std::move(category), TracePhase::kInstant,
                    at_s, 0.0, id, value, tid});
}

std::vector<TraceEvent> EventTracer::events() const {
  std::lock_guard lock(mutex_);
  if (capacity_ == 0 || ring_.size() < capacity_) return ring_;
  // Full ring: oldest surviving event sits at the write cursor.
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t EventTracer::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t EventTracer::dropped() const {
  std::lock_guard lock(mutex_);
  return recorded_ - ring_.size();
}

void EventTracer::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string EventTracer::to_jsonl() const {
  std::string out;
  // A truncated ring must not read like a complete record: lead with a
  // meta line naming how many events the ring overwrote. Kept silent at
  // zero so an intact trace stays exactly one event per line.
  if (const std::uint64_t lost = dropped(); lost > 0) {
    JsonWriter w;
    w.begin_object();
    w.field("meta", "tracer");
    w.field("dropped", lost);
    w.field("capacity", static_cast<std::uint64_t>(capacity_));
    w.end_object();
    out += w.str();
    out += '\n';
  }
  for (const auto& e : events()) {
    JsonWriter w;
    append_event_json(w, e, /*chrome=*/false);
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string EventTracer::to_chrome_trace() const {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  // trace viewers ignore unknown otherData keys; ours records ring
  // truncation so a gap at the start of the timeline is explainable.
  w.key("otherData").begin_object();
  w.field("droppedEvents", dropped());
  w.field("ringCapacity", static_cast<std::uint64_t>(capacity_));
  w.end_object();
  w.key("traceEvents").begin_array();
  for (const auto& e : events()) append_event_json(w, e, /*chrome=*/true);
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {
void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("EventTracer: cannot open " + path);
  }
  out << text;
  if (!out) {
    throw std::runtime_error("EventTracer: write failed: " + path);
  }
}
}  // namespace

void EventTracer::write_jsonl(const std::string& path) const {
  write_text_file(path, to_jsonl());
}

void EventTracer::write_chrome_trace(const std::string& path) const {
  write_text_file(path, to_chrome_trace());
}

EventTracer& default_tracer() {
  static auto* tracer = new EventTracer();  // intentionally leaked
  return *tracer;
}

}  // namespace harvest::obs
