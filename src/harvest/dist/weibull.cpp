#include "harvest/dist/weibull.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "harvest/numerics/special_functions.hpp"

namespace harvest::dist {

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !std::isfinite(shape)) {
    throw std::invalid_argument("Weibull: shape must be finite and > 0");
  }
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    throw std::invalid_argument("Weibull: scale must be finite and > 0");
  }
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    // Density at 0: 0 for shape > 1, rate 1/scale at shape == 1, +inf below.
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  const double z = x / scale_;
  const double za = std::pow(z, shape_);
  return shape_ / scale_ * std::pow(z, shape_ - 1.0) * std::exp(-za);
}

double Weibull::log_pdf(double x) const {
  if (x <= 0.0) {
    return (x == 0.0 && shape_ == 1.0)
               ? -std::log(scale_)
               : -std::numeric_limits<double>::infinity();
  }
  const double z = x / scale_;
  return std::log(shape_ / scale_) + (shape_ - 1.0) * std::log(z) -
         std::pow(z, shape_);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::survival(double x) const {
  if (x <= 0.0) return 1.0;
  return std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::hazard(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  return shape_ / scale_ * std::pow(x / scale_, shape_ - 1.0);
}

double Weibull::mean() const {
  return scale_ * numerics::gamma_fn(1.0 + 1.0 / shape_);
}

double Weibull::second_moment() const {
  return scale_ * scale_ * numerics::gamma_fn(1.0 + 2.0 / shape_);
}

double Weibull::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("Weibull::quantile: p in [0,1)");
  }
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::sample(numerics::Rng& rng) const {
  return rng.weibull(shape_, scale_);
}

double Weibull::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  if (x == 0.0) return 0.0;
  // Substitute u = (t/β)^α: ∫₀ˣ t f(t) dt = β ∫₀^{(x/β)^α} u^{1/α} e^{−u} du
  //                                       = β Γ(1+1/α) P(1+1/α, (x/β)^α).
  const double a = 1.0 + 1.0 / shape_;
  const double z = std::pow(x / scale_, shape_);
  return mean() * numerics::gamma_p(a, z);
}

double Weibull::conditional_survival(double t, double x) const {
  if (t < 0.0 || x < 0.0) {
    throw std::invalid_argument("conditional_survival: t, x >= 0");
  }
  const double zt = std::pow(t / scale_, shape_);
  const double ztx = std::pow((t + x) / scale_, shape_);
  return std::exp(zt - ztx);
}

std::string Weibull::describe() const {
  std::ostringstream out;
  out << "weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return out.str();
}

std::unique_ptr<Distribution> Weibull::clone() const {
  return std::make_unique<Weibull>(*this);
}

}  // namespace harvest::dist
