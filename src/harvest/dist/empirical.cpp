#include "harvest/dist/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace harvest::dist {

Empirical::Empirical(std::vector<double> sample) : sorted_(std::move(sample)) {
  if (sorted_.empty()) throw std::invalid_argument("Empirical: empty sample");
  for (double x : sorted_) {
    if (!(x >= 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument("Empirical: values must be finite and >= 0");
    }
  }
  std::sort(sorted_.begin(), sorted_.end());
  prefix_sum_.resize(sorted_.size());
  std::partial_sum(sorted_.begin(), sorted_.end(), prefix_sum_.begin());
}

double Empirical::pdf(double) const {
  throw std::logic_error("Empirical::pdf: ECDF has no density");
}

double Empirical::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Empirical::mean() const {
  return prefix_sum_.back() / static_cast<double>(sorted_.size());
}

double Empirical::second_moment() const {
  double acc = 0.0;
  for (double x : sorted_) acc += x * x;
  return acc / static_cast<double>(sorted_.size());
}

double Empirical::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("Empirical::quantile: p in [0,1)");
  }
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_.size()));
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double Empirical::sample(numerics::Rng& rng) const {
  return sorted_[rng.uniform_index(sorted_.size())];
}

double Empirical::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  if (it == sorted_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(it - sorted_.begin()) - 1;
  return prefix_sum_[idx] / static_cast<double>(sorted_.size());
}

int Empirical::parameter_count() const {
  return static_cast<int>(sorted_.size());
}

std::string Empirical::describe() const {
  std::ostringstream out;
  out << "empirical(n=" << sorted_.size() << ", mean=" << mean() << ")";
  return out.str();
}

std::unique_ptr<Distribution> Empirical::clone() const {
  return std::make_unique<Empirical>(*this);
}

}  // namespace harvest::dist
