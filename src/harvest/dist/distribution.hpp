// Abstract interface for the availability-duration distributions the paper
// studies (exponential, Weibull, hyperexponential) plus empirical CDFs.
//
// Beyond the usual pdf/cdf/sampling surface, the interface exposes the two
// quantities the checkpoint optimizer consumes on its hot path:
//
//  * partial_expectation(x) = ∫₀ˣ t f(t) dt — the numerator of the Markov
//    model's expected-loss terms K02/K22 (paper §3.5). Every family here
//    supplies a closed form; a quadrature fallback is provided for new
//    families and used by tests as an oracle.
//  * conditional_survival(t, x) = P(X > t + x | X > t) — the future-lifetime
//    survival (paper Eq. 8), overridden with numerically stable closed forms
//    (Eqs. 9, 10) per family.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "harvest/numerics/rng.hpp"

namespace harvest::dist {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x >= 0.
  [[nodiscard]] virtual double pdf(double x) const = 0;

  /// log pdf(x); may be overridden for numerical range.
  [[nodiscard]] virtual double log_pdf(double x) const;

  /// Cumulative distribution function F(x) = P(X <= x).
  [[nodiscard]] virtual double cdf(double x) const = 0;

  /// Survival S(x) = 1 − F(x); override when a stabler form exists.
  [[nodiscard]] virtual double survival(double x) const;

  /// Hazard rate f(x) / S(x).
  [[nodiscard]] virtual double hazard(double x) const;

  /// E[X]; must be finite for the families used here.
  [[nodiscard]] virtual double mean() const = 0;

  /// E[X²]. Default: quadrature against the survival function
  /// (E[X²] = 2∫₀^∞ t S(t) dt); overridden with closed forms per family.
  [[nodiscard]] virtual double second_moment() const;

  /// Var[X] = E[X²] − E[X]².
  [[nodiscard]] double variance() const;

  /// Coefficient of variation (stddev/mean): 1 for exponential, > 1 for the
  /// super-exponential variability desktop availability shows.
  [[nodiscard]] double coefficient_of_variation() const;

  /// Inverse CDF. Default: bracketed bisection on cdf().
  [[nodiscard]] virtual double quantile(double p) const;

  /// Draw one variate. Default: inverse-transform via quantile().
  [[nodiscard]] virtual double sample(numerics::Rng& rng) const;

  /// ∫₀ˣ t f(t) dt. Default: adaptive quadrature; overridden with closed
  /// forms by every concrete family.
  [[nodiscard]] virtual double partial_expectation(double x) const;

  /// P(X > t + x | X > t). Default: survival(t + x) / survival(t).
  [[nodiscard]] virtual double conditional_survival(double t, double x) const;

  /// Σ log_pdf(xᵢ) over a sample.
  [[nodiscard]] virtual double log_likelihood(
      std::span<const double> xs) const;

  /// Number of free parameters (for AIC/BIC).
  [[nodiscard]] virtual int parameter_count() const = 0;

  /// Short family name, e.g. "weibull".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Human-readable parameter summary, e.g. "weibull(shape=0.43, scale=3409)".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Deep copy.
  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace harvest::dist
