// Weibull availability model (paper Eqs. 3–4). With shape < 1 the hazard
// decreases with uptime (heavy-tailed), which is what the paper's Condor
// traces look like — the longer a machine has been available, the longer it
// is likely to remain available, so the optimal checkpoint schedule is
// aperiodic with growing intervals.
#pragma once

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double survival(double x) const override;
  [[nodiscard]] double hazard(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(numerics::Rng& rng) const override;
  /// Closed form via the lower incomplete gamma:
  /// ∫₀ˣ t f(t) dt = β · Γ(1+1/α) · P(1+1/α, (x/β)^α).
  [[nodiscard]] double partial_expectation(double x) const override;
  /// Stable form of Eq. 9: exp((t/β)^α − ((t+x)/β)^α).
  [[nodiscard]] double conditional_survival(double t, double x) const override;
  [[nodiscard]] int parameter_count() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "weibull"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace harvest::dist
