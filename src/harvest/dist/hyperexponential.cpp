#include "harvest/dist/hyperexponential.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace harvest::dist {
namespace {
constexpr double kWeightSumTol = 1e-6;
}

Hyperexponential::Hyperexponential(std::vector<double> weights,
                                   std::vector<double> rates)
    : weights_(std::move(weights)), rates_(std::move(rates)) {
  if (weights_.empty() || weights_.size() != rates_.size()) {
    throw std::invalid_argument(
        "Hyperexponential: weights/rates must be non-empty and equal length");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (!(weights_[i] >= 0.0) || !std::isfinite(weights_[i])) {
      throw std::invalid_argument("Hyperexponential: weights must be >= 0");
    }
    if (!(rates_[i] > 0.0) || !std::isfinite(rates_[i])) {
      throw std::invalid_argument("Hyperexponential: rates must be > 0");
    }
    sum += weights_[i];
  }
  if (std::fabs(sum - 1.0) > kWeightSumTol) {
    throw std::invalid_argument("Hyperexponential: weights must sum to 1");
  }
  for (double& w : weights_) w /= sum;  // exact renormalization
}

double Hyperexponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i] * rates_[i] * std::exp(-rates_[i] * x);
  }
  return acc;
}

double Hyperexponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - survival(x);
}

double Hyperexponential::survival(double x) const {
  if (x <= 0.0) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i] * std::exp(-rates_[i] * x);
  }
  return acc;
}

double Hyperexponential::mean() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i] / rates_[i];
  }
  return acc;
}

double Hyperexponential::second_moment() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i] * 2.0 / (rates_[i] * rates_[i]);
  }
  return acc;
}

double Hyperexponential::sample(numerics::Rng& rng) const {
  const std::size_t phase = rng.categorical(weights_);
  return rng.exponential(rates_[phase]);
}

double Hyperexponential::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double lx = rates_[i] * x;
    acc += weights_[i] * (1.0 - std::exp(-lx) * (1.0 + lx)) / rates_[i];
  }
  return acc;
}

double Hyperexponential::conditional_survival(double t, double x) const {
  if (t < 0.0 || x < 0.0) {
    throw std::invalid_argument("conditional_survival: t, x >= 0");
  }
  // Factor e^{−λ_min t} out of both sums so the ratio stays well-scaled even
  // for ages t far into the tail.
  double min_rate = rates_[0];
  for (double r : rates_) min_rate = std::min(min_rate, r);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    const double shifted = std::exp(-(rates_[i] - min_rate) * t);
    num += weights_[i] * shifted * std::exp(-rates_[i] * x);
    den += weights_[i] * shifted;
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

int Hyperexponential::parameter_count() const {
  return static_cast<int>(2 * weights_.size() - 1);
}

std::string Hyperexponential::name() const {
  std::ostringstream out;
  out << "hyperexp" << weights_.size();
  return out.str();
}

std::string Hyperexponential::describe() const {
  std::ostringstream out;
  out << "hyperexp(k=" << weights_.size();
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    out << ", p" << i << "=" << weights_[i] << " rate" << i << "=" << rates_[i];
  }
  out << ")";
  return out.str();
}

std::unique_ptr<Distribution> Hyperexponential::clone() const {
  return std::make_unique<Hyperexponential>(*this);
}

}  // namespace harvest::dist
