// Future-lifetime (residual-life) distribution: the law of X − t given
// X > t (paper Eq. 8). This is what the optimizer actually plugs into the
// Markov model's state-0 quantities — the machine has already been up for
// `age` seconds, and all probabilities must be conditioned on that.
//
// The wrapper delegates to the base family's closed forms
// (conditional_survival, partial_expectation), so it is exact and O(1) for
// all three paper families while remaining correct for any Distribution.
#pragma once

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

class Conditional final : public Distribution {
 public:
  /// Future-lifetime law of `base` given survival to `age` (>= 0).
  Conditional(DistributionPtr base, double age);

  [[nodiscard]] double age() const { return age_; }
  [[nodiscard]] const Distribution& base() const { return *base_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double survival(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double sample(numerics::Rng& rng) const override;
  [[nodiscard]] double partial_expectation(double x) const override;
  [[nodiscard]] double conditional_survival(double t, double x) const override;
  [[nodiscard]] int parameter_count() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  DistributionPtr base_;
  double age_;
  double base_survival_at_age_;
};

}  // namespace harvest::dist
