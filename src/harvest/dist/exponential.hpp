// Exponential availability model (paper Eqs. 1–2). Memoryless: the
// conditional future-lifetime distribution is the distribution itself, so a
// checkpoint schedule under this model is periodic (a single T_opt).
#pragma once

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

class Exponential final : public Distribution {
 public:
  /// Rate parameterization: mean = 1 / rate.
  explicit Exponential(double rate);

  [[nodiscard]] static Exponential from_mean(double mean_value);

  [[nodiscard]] double rate() const { return rate_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double survival(double x) const override;
  [[nodiscard]] double hazard(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(numerics::Rng& rng) const override;
  [[nodiscard]] double partial_expectation(double x) const override;
  [[nodiscard]] double conditional_survival(double t, double x) const override;
  [[nodiscard]] int parameter_count() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "exponential"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double rate_;
};

}  // namespace harvest::dist
