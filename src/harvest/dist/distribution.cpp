#include "harvest/dist/distribution.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "harvest/numerics/quadrature.hpp"
#include "harvest/numerics/roots.hpp"

namespace harvest::dist {

double Distribution::log_pdf(double x) const {
  const double p = pdf(x);
  return (p > 0.0) ? std::log(p) : -std::numeric_limits<double>::infinity();
}

double Distribution::survival(double x) const { return 1.0 - cdf(x); }

double Distribution::hazard(double x) const {
  const double s = survival(x);
  if (s <= 0.0) return std::numeric_limits<double>::infinity();
  return pdf(x) / s;
}

double Distribution::second_moment() const {
  // E[X²] = 2 ∫₀^∞ t S(t) dt, integrated over doubling panels.
  const double m = std::max(mean(), 1.0);
  const auto integrand = [this](double t) { return t * survival(t); };
  double total = numerics::integrate_adaptive_simpson(integrand, 0.0, m,
                                                      1e-10 * m * m);
  double lo = m;
  double width = m;
  for (int i = 0; i < 64; ++i) {
    const double chunk =
        numerics::integrate_gauss_legendre(integrand, lo, lo + width, 8);
    total += chunk;
    lo += width;
    if (survival(lo) * lo < 1e-14 * total && chunk < 1e-10 * total) break;
    width *= 2.0;
  }
  return 2.0 * total;
}

double Distribution::variance() const {
  const double m = mean();
  return second_moment() - m * m;
}

double Distribution::coefficient_of_variation() const {
  const double m = mean();
  if (m <= 0.0) return 0.0;
  return std::sqrt(std::max(variance(), 0.0)) / m;
}

double Distribution::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("quantile: p in [0,1)");
  }
  if (p == 0.0) return 0.0;
  double lo = 0.0;
  double hi = std::max(mean(), 1.0);
  const auto g = [&](double x) { return cdf(x) - p; };
  if (!numerics::expand_bracket_upward(g, lo, hi)) {
    throw std::runtime_error("quantile: failed to bracket");
  }
  return numerics::find_root_bisection(g, lo, hi).x;
}

double Distribution::sample(numerics::Rng& rng) const {
  return quantile(rng.uniform());
}

double Distribution::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  if (x == 0.0) return 0.0;
  return numerics::integrate_adaptive_simpson(
      [this](double t) { return t * pdf(t); }, 0.0, x, 1e-10);
}

double Distribution::conditional_survival(double t, double x) const {
  if (t < 0.0 || x < 0.0) {
    throw std::invalid_argument("conditional_survival: t, x >= 0");
  }
  const double st = survival(t);
  if (st <= 0.0) return 0.0;
  return survival(t + x) / st;
}

double Distribution::log_likelihood(std::span<const double> xs) const {
  double acc = 0.0;
  for (double x : xs) acc += log_pdf(x);
  return acc;
}

}  // namespace harvest::dist
