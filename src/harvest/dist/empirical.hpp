// Empirical distribution (ECDF) over an observed sample. Used by the
// goodness-of-fit tests (KS / AD distances between a fitted family and the
// data) and by validation tooling; `sample` bootstraps from the data.
//
// pdf() is intentionally unsupported — an ECDF has no density; callers that
// need one should fit a parametric family instead.
#pragma once

#include <vector>

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

class Empirical final : public Distribution {
 public:
  /// Takes any sample (unsorted is fine); must be non-empty, values >= 0.
  explicit Empirical(std::vector<double> sample);

  [[nodiscard]] const std::vector<double>& sorted_sample() const {
    return sorted_;
  }

  /// Throws std::logic_error: the ECDF has no density.
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(numerics::Rng& rng) const override;
  /// Exact: (1/n) Σ_{xᵢ ≤ x} xᵢ.
  [[nodiscard]] double partial_expectation(double x) const override;
  [[nodiscard]] int parameter_count() const override;
  [[nodiscard]] std::string name() const override { return "empirical"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  std::vector<double> sorted_;
  std::vector<double> prefix_sum_;  // prefix_sum_[i] = Σ_{j<=i} sorted_[j]
};

}  // namespace harvest::dist
