#include "harvest/dist/serialize.hpp"

#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "harvest/dist/exponential.hpp"
#include "harvest/dist/gamma.hpp"
#include "harvest/dist/hyperexponential.hpp"
#include "harvest/dist/lognormal.hpp"
#include "harvest/dist/weibull.hpp"

namespace harvest::dist {
namespace {

std::ostringstream make_stream() {
  std::ostringstream out;
  out << std::setprecision(17);  // round-trips doubles exactly
  return out;
}

[[noreturn]] void fail(const std::string& why) {
  throw std::invalid_argument("dist::deserialize: " + why);
}

double read_double(std::istringstream& in, const char* what) {
  double v;
  if (!(in >> v)) fail(std::string("missing or malformed ") + what);
  return v;
}

}  // namespace

std::string serialize(const Distribution& model) {
  if (const auto* e = dynamic_cast<const Exponential*>(&model)) {
    auto out = make_stream();
    out << "exponential " << e->rate();
    return out.str();
  }
  if (const auto* w = dynamic_cast<const Weibull*>(&model)) {
    auto out = make_stream();
    out << "weibull " << w->shape() << " " << w->scale();
    return out.str();
  }
  if (const auto* h = dynamic_cast<const Hyperexponential*>(&model)) {
    auto out = make_stream();
    out << "hyperexp " << h->phases();
    for (std::size_t i = 0; i < h->phases(); ++i) {
      out << " " << h->weights()[i] << " " << h->rates()[i];
    }
    return out.str();
  }
  if (const auto* ln = dynamic_cast<const Lognormal*>(&model)) {
    auto out = make_stream();
    out << "lognormal " << ln->mu() << " " << ln->sigma();
    return out.str();
  }
  if (const auto* g = dynamic_cast<const GammaDist*>(&model)) {
    auto out = make_stream();
    out << "gamma " << g->shape() << " " << g->scale();
    return out.str();
  }
  throw std::invalid_argument("dist::serialize: '" + model.name() +
                              "' is not serializable");
}

DistributionPtr deserialize(const std::string& line) {
  std::istringstream in(line);
  std::string kind;
  if (!(in >> kind)) fail("empty input");
  if (kind == "exponential") {
    return std::make_shared<Exponential>(read_double(in, "rate"));
  }
  if (kind == "weibull") {
    const double shape = read_double(in, "shape");
    const double scale = read_double(in, "scale");
    return std::make_shared<Weibull>(shape, scale);
  }
  if (kind == "hyperexp") {
    int k;
    if (!(in >> k) || k < 1 || k > 64) fail("bad phase count");
    std::vector<double> weights;
    std::vector<double> rates;
    for (int i = 0; i < k; ++i) {
      weights.push_back(read_double(in, "weight"));
      rates.push_back(read_double(in, "rate"));
    }
    return std::make_shared<Hyperexponential>(std::move(weights),
                                              std::move(rates));
  }
  if (kind == "lognormal") {
    const double mu = read_double(in, "mu");
    const double sigma = read_double(in, "sigma");
    return std::make_shared<Lognormal>(mu, sigma);
  }
  if (kind == "gamma") {
    const double shape = read_double(in, "shape");
    const double scale = read_double(in, "scale");
    return std::make_shared<GammaDist>(shape, scale);
  }
  fail("unknown model kind '" + kind + "'");
}

}  // namespace harvest::dist
