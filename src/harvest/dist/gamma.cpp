#include "harvest/dist/gamma.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "harvest/numerics/special_functions.hpp"

namespace harvest::dist {

GammaDist::GammaDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !std::isfinite(shape)) {
    throw std::invalid_argument("GammaDist: shape must be finite and > 0");
  }
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    throw std::invalid_argument("GammaDist: scale must be finite and > 0");
  }
}

double GammaDist::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ > 1.0) return 0.0;
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  return std::exp(log_pdf(x));
}

double GammaDist::log_pdf(double x) const {
  if (x <= 0.0) {
    return (x == 0.0 && shape_ == 1.0)
               ? -std::log(scale_)
               : -std::numeric_limits<double>::infinity();
  }
  return (shape_ - 1.0) * std::log(x) - x / scale_ -
         numerics::log_gamma(shape_) - shape_ * std::log(scale_);
}

double GammaDist::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return numerics::gamma_p(shape_, x / scale_);
}

double GammaDist::mean() const { return shape_ * scale_; }

double GammaDist::second_moment() const {
  return shape_ * (shape_ + 1.0) * scale_ * scale_;
}

double GammaDist::sample(numerics::Rng& rng) const {
  // Marsaglia–Tsang for shape >= 1; boost to shape+1 and correct otherwise.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    double u = rng.uniform();
    while (u == 0.0) u = rng.uniform();
    boost = std::pow(u, 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * scale_;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

double GammaDist::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  if (x == 0.0) return 0.0;
  return mean() * numerics::gamma_p(shape_ + 1.0, x / scale_);
}

std::string GammaDist::describe() const {
  std::ostringstream out;
  out << "gamma(shape=" << shape_ << ", scale=" << scale_ << ")";
  return out.str();
}

std::unique_ptr<Distribution> GammaDist::clone() const {
  return std::make_unique<GammaDist>(*this);
}

}  // namespace harvest::dist
