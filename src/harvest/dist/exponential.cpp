#include "harvest/dist/exponential.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace harvest::dist {

Exponential::Exponential(double rate) : rate_(rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("Exponential: rate must be finite and > 0");
  }
}

Exponential Exponential::from_mean(double mean_value) {
  if (!(mean_value > 0.0)) {
    throw std::invalid_argument("Exponential::from_mean: mean > 0");
  }
  return Exponential(1.0 / mean_value);
}

double Exponential::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * x);
}

double Exponential::log_pdf(double x) const {
  if (x < 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(rate_) - rate_ * x;
}

double Exponential::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-rate_ * x);
}

double Exponential::survival(double x) const {
  if (x <= 0.0) return 1.0;
  return std::exp(-rate_ * x);
}

double Exponential::hazard(double x) const {
  if (x < 0.0) return 0.0;
  return rate_;
}

double Exponential::mean() const { return 1.0 / rate_; }

double Exponential::second_moment() const { return 2.0 / (rate_ * rate_); }

double Exponential::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("Exponential::quantile: p in [0,1)");
  }
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(numerics::Rng& rng) const {
  return rng.exponential(rate_);
}

double Exponential::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  // ∫₀ˣ t λ e^{−λt} dt = (1 − e^{−λx}(1 + λx)) / λ
  const double lx = rate_ * x;
  return (1.0 - std::exp(-lx) * (1.0 + lx)) / rate_;
}

double Exponential::conditional_survival(double t, double x) const {
  if (t < 0.0 || x < 0.0) {
    throw std::invalid_argument("conditional_survival: t, x >= 0");
  }
  return std::exp(-rate_ * x);  // memoryless
}

std::string Exponential::describe() const {
  std::ostringstream out;
  out << "exponential(rate=" << rate_ << ", mean=" << mean() << ")";
  return out.str();
}

std::unique_ptr<Distribution> Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

}  // namespace harvest::dist
