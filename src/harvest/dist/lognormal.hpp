// Lognormal availability model. Not one of the paper's three families, but
// a standard alternative in the availability-modeling literature (and the
// model this library's own network-jitter uses); having it in the menu lets
// users test whether the paper's conclusions are family-specific.
#pragma once

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

class Lognormal final : public Distribution {
 public:
  /// ln X ~ Normal(mu, sigma²); sigma > 0.
  Lognormal(double mu, double sigma);

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(numerics::Rng& rng) const override;
  /// Closed form: ∫₀ˣ t f(t) dt = E[X] · Φ((ln x − μ − σ²) / σ).
  [[nodiscard]] double partial_expectation(double x) const override;
  [[nodiscard]] int parameter_count() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "lognormal"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace harvest::dist
