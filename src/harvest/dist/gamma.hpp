// Gamma availability model: the other classic two-parameter lifetime family
// (shape < 1 gives a decreasing hazard like the heavy-tailed Weibull).
// Included so the model menu spans the standard alternatives from the
// availability-modeling literature.
#pragma once

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

class GammaDist final : public Distribution {
 public:
  /// shape k > 0, scale θ > 0; mean = kθ.
  GammaDist(double shape, double scale);

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double sample(numerics::Rng& rng) const override;
  /// Closed form: ∫₀ˣ t f(t) dt = kθ · P(k+1, x/θ).
  [[nodiscard]] double partial_expectation(double x) const override;
  [[nodiscard]] int parameter_count() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "gamma"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

}  // namespace harvest::dist
