#include "harvest/dist/lognormal.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "harvest/numerics/special_functions.hpp"

namespace harvest::dist {

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!std::isfinite(mu)) {
    throw std::invalid_argument("Lognormal: mu must be finite");
  }
  if (!(sigma > 0.0) || !std::isfinite(sigma)) {
    throw std::invalid_argument("Lognormal: sigma must be finite and > 0");
  }
}

double Lognormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (x * sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double Lognormal::log_pdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x * sigma_) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return numerics::normal_cdf((std::log(x) - mu_) / sigma_);
}

double Lognormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double Lognormal::second_moment() const {
  return std::exp(2.0 * mu_ + 2.0 * sigma_ * sigma_);
}

double Lognormal::quantile(double p) const {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("Lognormal::quantile: p in [0,1)");
  }
  if (p == 0.0) return 0.0;
  return std::exp(mu_ + sigma_ * numerics::normal_quantile(p));
}

double Lognormal::sample(numerics::Rng& rng) const {
  return rng.lognormal(mu_, sigma_);
}

double Lognormal::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  if (x == 0.0) return 0.0;
  const double z = (std::log(x) - mu_ - sigma_ * sigma_) / sigma_;
  return mean() * numerics::normal_cdf(z);
}

std::string Lognormal::describe() const {
  std::ostringstream out;
  out << "lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return out.str();
}

std::unique_ptr<Distribution> Lognormal::clone() const {
  return std::make_unique<Lognormal>(*this);
}

}  // namespace harvest::dist
