// Compact text (de)serialization of availability models, so fitted models
// can be stored centrally (the checkpoint manager sends model parameters to
// the test process in the paper's live experiment — this is that wire
// format). Grammar, one model per line:
//
//   exponential <rate>
//   weibull <shape> <scale>
//   hyperexp <k> <p1> <rate1> ... <pk> <ratek>
//   lognormal <mu> <sigma>
//   gamma <shape> <scale>
//
// Empirical and Conditional are deliberately not serializable (the first
// would mean shipping raw data; the second is reconstructed from its base
// and the current uptime).
#pragma once

#include <string>

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

/// Render a model as a single line. Throws std::invalid_argument for
/// non-serializable kinds (empirical, conditional).
[[nodiscard]] std::string serialize(const Distribution& model);

/// Parse a line produced by serialize(). Throws std::invalid_argument with
/// a description on malformed input.
[[nodiscard]] DistributionPtr deserialize(const std::string& line);

}  // namespace harvest::dist
