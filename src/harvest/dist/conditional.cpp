#include "harvest/dist/conditional.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "harvest/numerics/quadrature.hpp"

namespace harvest::dist {

Conditional::Conditional(DistributionPtr base, double age)
    : base_(std::move(base)), age_(age) {
  if (!base_) throw std::invalid_argument("Conditional: null base");
  if (!(age >= 0.0) || !std::isfinite(age)) {
    throw std::invalid_argument("Conditional: age must be finite and >= 0");
  }
  base_survival_at_age_ = base_->survival(age_);
  if (base_survival_at_age_ <= 0.0) {
    throw std::invalid_argument(
        "Conditional: base survival at age is zero; conditioning undefined");
  }
}

double Conditional::pdf(double x) const {
  if (x < 0.0) return 0.0;
  return base_->pdf(age_ + x) / base_survival_at_age_;
}

double Conditional::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - base_->conditional_survival(age_, x);
}

double Conditional::survival(double x) const {
  if (x <= 0.0) return 1.0;
  return base_->conditional_survival(age_, x);
}

double Conditional::mean() const {
  // E[X − t | X > t] = ∫₀^∞ S_t(x) dx, integrated over doubling panels.
  // (The closed form (E[X] − PE(t) − t·S(t)) / S(t) cancels catastrophically
  // once S(t) is far below 1, so it is not used.)
  const double m = std::max(base_->mean(), 1.0);
  const auto s = [this](double x) { return survival(x); };
  // Head chunk adaptively (heavy-tailed survivals have unbounded slope at
  // 0), then geometrically growing Gauss–Legendre panels for the tail.
  double total = numerics::integrate_adaptive_simpson(s, 0.0, m, 1e-10 * m);
  double lo = m;
  double width = m;
  for (int i = 0; i < 64; ++i) {
    const double chunk = numerics::integrate_gauss_legendre(s, lo, lo + width, 8);
    total += chunk;
    lo += width;
    if (survival(lo) < 1e-13 && chunk < 1e-10 * total) break;
    width *= 2.0;
  }
  return total;
}

double Conditional::sample(numerics::Rng& rng) const {
  // Inverse transform through the base quantile:
  // X | X > t  ~  F⁻¹(F(t) + U·S(t)), then shift by −t.
  const double u = rng.uniform();
  const double p = base_->cdf(age_) + u * base_survival_at_age_;
  if (p >= 1.0) {
    // Defend against round-off at the far tail.
    return base_->quantile(std::nextafter(1.0, 0.0)) - age_;
  }
  return base_->quantile(p) - age_;
}

double Conditional::partial_expectation(double x) const {
  if (x < 0.0) throw std::invalid_argument("partial_expectation: x >= 0");
  if (x == 0.0) return 0.0;
  // ∫₀ˣ u f_t(u) du = [PE(t+x) − PE(t) − t(F(t+x) − F(t))] / S(t)
  const double pe_delta = base_->partial_expectation(age_ + x) -
                          base_->partial_expectation(age_);
  const double cdf_delta =
      base_survival_at_age_ - base_->survival(age_ + x);
  return (pe_delta - age_ * cdf_delta) / base_survival_at_age_;
}

double Conditional::conditional_survival(double t, double x) const {
  // Conditioning a conditional just adds ages.
  return base_->conditional_survival(age_ + t, x);
}

int Conditional::parameter_count() const { return base_->parameter_count(); }

std::string Conditional::name() const { return base_->name() + "|age"; }

std::string Conditional::describe() const {
  std::ostringstream out;
  out << base_->describe() << " conditioned on age " << age_;
  return out.str();
}

std::unique_ptr<Distribution> Conditional::clone() const {
  return std::make_unique<Conditional>(base_, age_);
}

}  // namespace harvest::dist
