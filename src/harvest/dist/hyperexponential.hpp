// k-phase hyperexponential availability model (paper Eqs. 5–7): a mixture
// of exponentials Σ pᵢ λᵢ e^{−λᵢ x}. With well-separated rates it captures
// the bimodal "many short occupancies, a few very long ones" character of
// desktop availability, and the paper finds the 2-phase variant the most
// bandwidth-parsimonious model.
#pragma once

#include <vector>

#include "harvest/dist/distribution.hpp"

namespace harvest::dist {

class Hyperexponential final : public Distribution {
 public:
  /// `weights[i]` is the mixing probability of phase i (must sum to 1 within
  /// tolerance; renormalized exactly), `rates[i]` its exponential rate.
  Hyperexponential(std::vector<double> weights, std::vector<double> rates);

  [[nodiscard]] std::size_t phases() const { return weights_.size(); }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double survival(double x) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double second_moment() const override;
  [[nodiscard]] double sample(numerics::Rng& rng) const override;
  /// Closed form: Σ pᵢ (1 − e^{−λᵢx}(1 + λᵢx)) / λᵢ.
  [[nodiscard]] double partial_expectation(double x) const override;
  /// Eq. 10 via the survival ratio Σpᵢe^{−λᵢ(t+x)} / Σpᵢe^{−λᵢt}.
  [[nodiscard]] double conditional_survival(double t, double x) const override;
  /// 2k − 1 free parameters: k rates and k − 1 independent weights.
  [[nodiscard]] int parameter_count() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  std::vector<double> weights_;
  std::vector<double> rates_;
};

}  // namespace harvest::dist
